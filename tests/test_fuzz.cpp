// Randomized reference-model ("fuzz") tests: each core structure is driven
// with long random operation sequences next to a trivially-correct shadow
// model, catching bookkeeping drift that directed tests might miss.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>

#include "common/rng.hpp"
#include "core/arbiter.hpp"
#include "core/free_list.hpp"
#include "core/reservation.hpp"
#include "rtl/ctrl_pipeline.hpp"

namespace pmsb {
namespace {

TEST(FuzzReservation, MatchesMapShadow) {
  Rng rng(2001);
  const Cycle kStep = 8;
  ReservationTable rt(64);
  // Shadow: cycle -> (is_write, addr, link).
  struct Ref {
    bool is_write;
    std::uint32_t addr;
    unsigned link;
    bool head;
  };
  std::map<Cycle, Ref> shadow;

  for (Cycle t = 0; t < 20000; ++t) {
    // Randomly try to reserve a 1-3 segment operation starting at t..t+5.
    if (rng.next_bool(0.6)) {
      const Cycle t0 = t + static_cast<Cycle>(rng.next_below(6));
      const unsigned segs = 1 + static_cast<unsigned>(rng.next_below(3));
      std::vector<std::uint32_t> addrs;
      for (unsigned k = 0; k < segs; ++k)
        addrs.push_back(static_cast<std::uint32_t>(rng.next_below(32)));
      const bool is_write = rng.next_bool(0.5);
      const unsigned link = static_cast<unsigned>(rng.next_below(8));

      bool shadow_free = true;
      for (unsigned k = 0; k < segs; ++k)
        shadow_free &= !shadow.count(t0 + static_cast<Cycle>(k) * kStep);
      ASSERT_EQ(rt.progression_free(t0, kStep, segs), shadow_free) << "t=" << t;
      if (shadow_free) {
        if (is_write)
          rt.reserve_writes(t0, kStep, addrs, link, t0 - 1);
        else
          rt.reserve_reads(t0, kStep, addrs, link);
        for (unsigned k = 0; k < segs; ++k)
          shadow[t0 + static_cast<Cycle>(k) * kStep] = Ref{is_write, addrs[k], link, k == 0};
      }
    }
    // Take this cycle's op and compare.
    const SlotOp op = rt.take(t);
    auto it = shadow.find(t);
    if (it == shadow.end()) {
      EXPECT_TRUE(op.empty()) << "t=" << t;
    } else {
      const Ref& r = it->second;
      ASSERT_FALSE(op.empty()) << "t=" << t;
      EXPECT_EQ(op.has_write, r.is_write);
      EXPECT_EQ(op.has_read, !r.is_write);
      EXPECT_EQ(r.is_write ? op.w_addr : op.r_addr, r.addr);
      EXPECT_EQ(r.is_write ? op.w_head : op.r_head, r.head);
      shadow.erase(it);
    }
  }
}

TEST(FuzzFreeList, MatchesSetShadow) {
  Rng rng(2002);
  const std::uint32_t kTotal = 24;
  FreeList fl(kTotal);
  std::set<std::uint32_t> shadow_free, shadow_used, returned_this_cycle;
  for (std::uint32_t a = 0; a < kTotal; ++a) shadow_free.insert(a);

  for (int cycle = 0; cycle < 30000; ++cycle) {
    // Random allocations.
    if (rng.next_bool(0.5)) {
      const auto want = static_cast<std::uint32_t>(1 + rng.next_below(3));
      ASSERT_EQ(fl.can_alloc(want), shadow_free.size() >= want);
      if (shadow_free.size() >= want) {
        for (std::uint32_t a : fl.alloc(want)) {
          ASSERT_TRUE(shadow_free.count(a)) << "allocated a non-free address";
          shadow_free.erase(a);
          shadow_used.insert(a);
        }
      }
    }
    // Random releases of used addresses.
    while (!shadow_used.empty() && rng.next_bool(0.4)) {
      const auto it = shadow_used.begin();
      fl.release(*it);
      returned_this_cycle.insert(*it);
      shadow_used.erase(it);
    }
    // Staged releases still occupy their addresses until the clock edge.
    ASSERT_EQ(fl.in_use(), shadow_used.size() + returned_this_cycle.size());
    fl.tick();
    for (std::uint32_t a : returned_this_cycle) shadow_free.insert(a);
    returned_this_cycle.clear();
    ASSERT_EQ(fl.available(), shadow_free.size());
    ASSERT_EQ(fl.in_use(), shadow_used.size());
  }
}

TEST(FuzzRoundRobin, ContinuouslyEligibleIsGrantedWithinN) {
  // The starvation bound DESIGN.md invariant 2 leans on: while index `star`
  // stays eligible, it is granted within n picks, no matter how the other
  // indices' eligibility flickers.
  Rng rng(2003);
  const unsigned n = 8;
  RoundRobin rr(n);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto star = static_cast<unsigned>(rng.next_below(n));
    int waited = 0;
    for (;;) {
      std::vector<bool> eligible(n);
      for (unsigned i = 0; i < n; ++i) eligible[i] = rng.next_bool(0.5);
      eligible[star] = true;
      const int g = rr.pick([&](unsigned i) { return eligible[i]; });
      ASSERT_GE(g, 0);
      if (static_cast<unsigned>(g) == star) break;
      ASSERT_LT(++waited, static_cast<int>(n)) << "starvation bound violated";
    }
  }
}

TEST(FuzzCtrlPipeline, MatchesDelayLineShadow) {
  Rng rng(2004);
  const unsigned kStages = 6;
  CtrlPipeline cp(kStages);
  std::deque<StageCtrl> shadow(kStages);  // shadow[s] == ctrl at stage s.

  for (int t = 0; t < 20000; ++t) {
    StageCtrl injected;
    if (rng.next_bool(0.7)) {
      injected.op = rng.next_bool(0.5) ? StageOp::kWrite : StageOp::kRead;
      injected.addr = static_cast<std::uint32_t>(rng.next_below(64));
      injected.in_link = static_cast<std::uint16_t>(rng.next_below(4));
      injected.out_link = static_cast<std::uint16_t>(rng.next_below(4));
      injected.head = rng.next_bool(0.5);
      cp.initiate(injected);
    }
    shadow[0] = injected;
    for (unsigned s = 0; s < kStages; ++s) {
      const StageCtrl& got = cp.at(s);
      const StageCtrl& want = shadow[s];
      ASSERT_EQ(got.op, want.op) << "t=" << t << " s=" << s;
      if (!want.idle()) {
        ASSERT_EQ(got.addr, want.addr);
        ASSERT_EQ(got.in_link, want.in_link);
        ASSERT_EQ(got.out_link, want.out_link);
        ASSERT_EQ(got.head, want.head);
      }
    }
    cp.tick();
    shadow.pop_back();
    shadow.push_front(StageCtrl{});
  }
}

}  // namespace
}  // namespace pmsb
