// Tests of the two-phase simulation kernel.

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/link_pipeline.hpp"
#include "sim/trace.hpp"
#include "sim/wire.hpp"

namespace pmsb {
namespace {

/// A counter whose next value depends on another counter's *committed*
/// state; two-phase semantics make the result order-independent.
class Chained : public Component {
 public:
  explicit Chained(const Chained* upstream) : upstream_(upstream) {}
  void eval(Cycle) override { next_ = upstream_ ? upstream_->value_ + 1 : value_ + 1; }
  void commit(Cycle) override { value_ = next_; }
  int value() const { return value_; }

 private:
  const Chained* upstream_;
  int value_ = 0;
  int next_ = 0;
};

TEST(Engine, TwoPhaseIsEvalOrderIndependent) {
  // a feeds b. Register both orders; the committed chain must behave the
  // same: b lags a by exactly one cycle.
  for (bool reversed : {false, true}) {
    Chained a(nullptr);
    Chained b(&a);
    Engine eng;
    if (reversed) {
      eng.add(&b);
      eng.add(&a);
    } else {
      eng.add(&a);
      eng.add(&b);
    }
    eng.run(10);
    EXPECT_EQ(a.value(), 10);
    EXPECT_EQ(b.value(), 10);  // b_t = a_{t-1} + 1 = t.
  }
}

TEST(Engine, RunReturnsCycleCount) {
  Engine eng;
  Chained a(nullptr);
  eng.add(&a);
  EXPECT_EQ(eng.run(5), 5);
  EXPECT_EQ(eng.run(3), 8);
  EXPECT_EQ(eng.now(), 8);
}

TEST(Engine, RunUntilFiresOnPredicate) {
  Engine eng;
  Chained a(nullptr);
  eng.add(&a);
  const bool fired = eng.run_until([&](Cycle) { return a.value() >= 7; }, 100);
  EXPECT_TRUE(fired);
  EXPECT_EQ(a.value(), 7);
}

TEST(Engine, RunUntilTimesOut) {
  Engine eng;
  Chained a(nullptr);
  eng.add(&a);
  EXPECT_FALSE(eng.run_until([](Cycle) { return false; }, 50));
  EXPECT_EQ(eng.now(), 50);
}

TEST(EngineDeath, NullComponent) {
  Engine eng;
  EXPECT_DEATH(eng.add(nullptr), "null");
}

TEST(LinkPipeline, AddsExactlyStagesPlusOneCycles) {
  for (unsigned k : {1u, 2u, 5u}) {
    WireLink a, b;
    LinkPipeline pipe(&a, &b, k);
    WireTicker ticker;
    ticker.add(&a);
    ticker.add(&b);
    Engine eng;
    eng.add(&pipe);
    eng.add(&ticker);
    // Drive a marker onto `a` for cycle 1.
    a.drive_next(Flit{true, true, 0x5A});
    Cycle seen_at = -1;
    for (Cycle c = 0; c < 20; ++c) {
      eng.step();
      if (b.now().valid && seen_at < 0) seen_at = eng.now();  // Wire cycle.
    }
    // On `a` during cycle 1; on `b` during cycle 1 + (k + 1).
    EXPECT_EQ(seen_at, 1 + static_cast<Cycle>(k) + 1) << "k = " << k;
  }
}

TEST(LinkPipeline, PreservesFlitContentAndGaps) {
  WireLink a, b;
  LinkPipeline pipe(&a, &b, 2);
  WireTicker ticker;
  ticker.add(&a);
  ticker.add(&b);
  Engine eng;
  eng.add(&pipe);
  eng.add(&ticker);
  // Pattern: valid, gap, valid.
  std::vector<Flit> sent = {Flit{true, true, 1}, Flit{}, Flit{true, false, 2}};
  std::vector<Flit> got;
  for (Cycle c = 0; c < 12; ++c) {
    if (c < static_cast<Cycle>(sent.size()) && sent[c].valid) a.drive_next(sent[c]);
    eng.step();
    got.push_back(b.now());
  }
  // Shifted by 3 cycles, content identical (including the gap).
  EXPECT_EQ(got[3], sent[0]);
  EXPECT_EQ(got[4], Flit{});
  EXPECT_EQ(got[5], sent[2]);
}

TEST(WireTicker, ClocksFreeStandingWires) {
  WireLink w;
  WireTicker ticker;
  ticker.add(&w);
  Engine eng;
  eng.add(&ticker);
  w.drive_next(Flit{true, false, 9});
  eng.step();
  EXPECT_TRUE(w.now().valid);
  eng.step();
  EXPECT_FALSE(w.now().valid);
}

TEST(Tracer, WritesEventsWhenEnabled) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  Tracer tr(f, true);
  tr.event(42, "hello %d", 7);
  tr.line("raw");
  tr.set_enabled(false);
  tr.event(43, "suppressed");
  std::rewind(f);
  std::string all(512, '\0');
  all.resize(std::fread(all.data(), 1, all.size(), f));
  EXPECT_NE(all.find("42"), std::string::npos);
  EXPECT_NE(all.find("hello 7"), std::string::npos);
  EXPECT_NE(all.find("raw"), std::string::npos);
  EXPECT_EQ(all.find("suppressed"), std::string::npos);
  std::fclose(f);
}

}  // namespace
}  // namespace pmsb
