// Tests of the two-phase simulation kernel, including the quiescence
// contract (idle-cycle skipping) and mid-run metrics attachment.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/testbench.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/link_pipeline.hpp"
#include "sim/trace.hpp"
#include "sim/wire.hpp"

namespace pmsb {
namespace {

/// A counter whose next value depends on another counter's *committed*
/// state; two-phase semantics make the result order-independent.
class Chained : public Component {
 public:
  explicit Chained(const Chained* upstream) : upstream_(upstream) {}
  void eval(Cycle) override { next_ = upstream_ ? upstream_->value_ + 1 : value_ + 1; }
  void commit(Cycle) override { value_ = next_; }
  int value() const { return value_; }

 private:
  const Chained* upstream_;
  int value_ = 0;
  int next_ = 0;
};

TEST(Engine, TwoPhaseIsEvalOrderIndependent) {
  // a feeds b. Register both orders; the committed chain must behave the
  // same: b lags a by exactly one cycle.
  for (bool reversed : {false, true}) {
    Chained a(nullptr);
    Chained b(&a);
    Engine eng;
    if (reversed) {
      eng.add(&b);
      eng.add(&a);
    } else {
      eng.add(&a);
      eng.add(&b);
    }
    eng.run(10);
    EXPECT_EQ(a.value(), 10);
    EXPECT_EQ(b.value(), 10);  // b_t = a_{t-1} + 1 = t.
  }
}

TEST(Engine, RunReturnsCycleCount) {
  Engine eng;
  Chained a(nullptr);
  eng.add(&a);
  EXPECT_EQ(eng.run(5), 5);
  EXPECT_EQ(eng.run(3), 8);
  EXPECT_EQ(eng.now(), 8);
}

TEST(Engine, RunUntilFiresOnPredicate) {
  Engine eng;
  Chained a(nullptr);
  eng.add(&a);
  const bool fired = eng.run_until([&](Cycle) { return a.value() >= 7; }, 100);
  EXPECT_TRUE(fired);
  EXPECT_EQ(a.value(), 7);
}

TEST(Engine, RunUntilTimesOut) {
  Engine eng;
  Chained a(nullptr);
  eng.add(&a);
  EXPECT_FALSE(eng.run_until([](Cycle) { return false; }, 50));
  EXPECT_EQ(eng.now(), 50);
}

TEST(EngineDeath, NullComponent) {
  Engine eng;
  EXPECT_DEATH(eng.add(nullptr), "null");
}

TEST(LinkPipeline, AddsExactlyStagesPlusOneCycles) {
  for (unsigned k : {1u, 2u, 5u}) {
    WireLink a, b;
    LinkPipeline pipe(&a, &b, k);
    WireTicker ticker;
    ticker.add(&a);
    ticker.add(&b);
    Engine eng;
    eng.add(&pipe);
    eng.add(&ticker);
    // Drive a marker onto `a` for cycle 1.
    a.drive_next(Flit{true, true, 0x5A});
    Cycle seen_at = -1;
    for (Cycle c = 0; c < 20; ++c) {
      eng.step();
      if (b.now().valid && seen_at < 0) seen_at = eng.now();  // Wire cycle.
    }
    // On `a` during cycle 1; on `b` during cycle 1 + (k + 1).
    EXPECT_EQ(seen_at, 1 + static_cast<Cycle>(k) + 1) << "k = " << k;
  }
}

TEST(LinkPipeline, PreservesFlitContentAndGaps) {
  WireLink a, b;
  LinkPipeline pipe(&a, &b, 2);
  WireTicker ticker;
  ticker.add(&a);
  ticker.add(&b);
  Engine eng;
  eng.add(&pipe);
  eng.add(&ticker);
  // Pattern: valid, gap, valid.
  std::vector<Flit> sent = {Flit{true, true, 1}, Flit{}, Flit{true, false, 2}};
  std::vector<Flit> got;
  for (Cycle c = 0; c < 12; ++c) {
    if (c < static_cast<Cycle>(sent.size()) && sent[c].valid) a.drive_next(sent[c]);
    eng.step();
    got.push_back(b.now());
  }
  // Shifted by 3 cycles, content identical (including the gap).
  EXPECT_EQ(got[3], sent[0]);
  EXPECT_EQ(got[4], Flit{});
  EXPECT_EQ(got[5], sent[2]);
}

TEST(WireTicker, ClocksFreeStandingWires) {
  WireLink w;
  WireTicker ticker;
  ticker.add(&w);
  Engine eng;
  eng.add(&ticker);
  w.drive_next(Flit{true, false, 9});
  eng.step();
  EXPECT_TRUE(w.now().valid);
  eng.step();
  EXPECT_FALSE(w.now().valid);
}

// ---------------------------------------------------------------------------
// Quiescence / idle-cycle skipping.

/// Fires a pulse every `period` cycles, idle in between -- the canonical
/// skippable component. Instruments how the engine actually drove it
/// (evals vs skipped cycles) so tests can prove skipping happened without
/// changing results.
class PulsedSource : public Component {
 public:
  explicit PulsedSource(Cycle period) : period_(period), gap_(period) {}

  void eval(Cycle t) override {
    ++evals_;
    last_eval_ = t;
    if (gap_ == 0) {
      ++pulses_;
      gap_ = period_;
    } else {
      --gap_;
    }
  }
  void commit(Cycle) override {}
  bool has_commit() const override { return false; }

  bool is_quiescent(Cycle) const override { return gap_ > 0; }
  Cycle next_wake(Cycle t) const override { return t + gap_; }
  void skip(Cycle t, Cycle n) override {
    EXPECT_LE(n, gap_) << "skipped past our declared wake cycle";
    gap_ -= n;
    skipped_ += n;
    skip_calls_.emplace_back(t, n);
  }

  Cycle period_;
  Cycle gap_;
  std::uint64_t pulses_ = 0;
  std::uint64_t evals_ = 0;
  Cycle last_eval_ = -1;
  Cycle skipped_ = 0;
  std::vector<std::pair<Cycle, Cycle>> skip_calls_;
};

TEST(EngineIdleSkip, SkipsIdleGapsWithIdenticalResults) {
  PulsedSource stepped(100), skipped(100);
  Engine es, ek;
  es.add(&stepped);
  ek.add(&skipped);
  es.set_idle_skip(false);
  ek.set_idle_skip(true);
  es.run(1000);
  ek.run(1000);
  EXPECT_EQ(es.now(), ek.now());
  EXPECT_EQ(stepped.pulses_, skipped.pulses_);
  EXPECT_EQ(stepped.gap_, skipped.gap_);
  // The stepped engine evaluated every cycle; the skipping one did not.
  EXPECT_EQ(stepped.evals_, 1000u);
  EXPECT_LT(skipped.evals_, 500u);
  // Every cycle was either stepped or skip()-compensated -- never both.
  EXPECT_EQ(skipped.evals_ + static_cast<std::uint64_t>(skipped.skipped_), 1000u);
  EXPECT_FALSE(skipped.skip_calls_.empty());
  for (const auto& [t, n] : skipped.skip_calls_) {
    EXPECT_GE(t, 0);
    EXPECT_GT(n, 0);
  }
}

TEST(EngineIdleSkip, SkipStopsAtRunTarget) {
  // Wake (t + 500) far beyond the run target: the skip must clamp to the
  // target and leave the component's countdown mid-gap.
  PulsedSource p(500);
  Engine eng;
  eng.add(&p);
  eng.set_idle_skip(true);
  eng.run(123);
  EXPECT_EQ(eng.now(), 123);
  EXPECT_EQ(p.evals_ + static_cast<std::uint64_t>(p.skipped_), 123u);
  EXPECT_EQ(p.gap_, 500 - 123);
  EXPECT_EQ(p.pulses_, 0u);
}

TEST(EngineIdleSkip, CycleObserverPinsStepping) {
  struct CountingObserver : CycleObserver {
    std::uint64_t cycles = 0;
    void on_cycle_end(Cycle) override { ++cycles; }
  };
  PulsedSource p(100);
  CountingObserver obs;
  Engine eng;
  eng.add(&p);
  eng.add_cycle_observer(&obs);
  EXPECT_FALSE(eng.can_skip());
  eng.set_idle_skip(true);  // Requested, but the observer must win.
  eng.run(300);
  EXPECT_EQ(p.evals_, 300u);  // Every cycle stepped.
  EXPECT_EQ(p.skipped_, 0);
  EXPECT_EQ(obs.cycles, 300u);
}

TEST(EngineIdleSkip, RunUntilNeverSkips) {
  PulsedSource p(100);
  Engine eng;
  eng.add(&p);
  eng.set_idle_skip(true);
  EXPECT_FALSE(eng.run_until([](Cycle) { return false; }, 50));
  EXPECT_EQ(p.evals_, 50u);  // The predicate is checked per cycle: no skips.
  EXPECT_EQ(p.skipped_, 0);
}

TEST(EngineIdleSkip, SkipReplaysMetricSampleBoundaries) {
  // A fully quiescent run: one skip covers the whole window, so every
  // sample boundary inside it must be replayed at the stepped cadence.
  PulsedSource stepped(100000), skipped(100000);
  obs::MetricsRegistry ms, mk;
  ms.add_gauge("pulses", [&stepped] { return static_cast<double>(stepped.pulses_); });
  mk.add_gauge("pulses", [&skipped] { return static_cast<double>(skipped.pulses_); });
  Engine es, ek;
  es.add(&stepped);
  ek.add(&skipped);
  es.set_idle_skip(false);
  ek.set_idle_skip(true);
  es.set_metrics(&ms, 32);
  ek.set_metrics(&mk, 32);
  es.run(100);
  ek.run(100);
  EXPECT_LT(skipped.evals_, stepped.evals_);
  EXPECT_EQ(ms.samples_taken(), 3u);  // Cycles 31, 63, 95.
  EXPECT_EQ(mk.samples_taken(), 3u);
  EXPECT_EQ(ms.last_sample_cycle(), 95);
  EXPECT_EQ(mk.last_sample_cycle(), 95);
  const obs::GaugeStats* a = ms.find_gauge("pulses");
  const obs::GaugeStats* b = mk.find_gauge("pulses");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->samples, b->samples);
  EXPECT_DOUBLE_EQ(a->sum, b->sum);
  // Further runs keep the replayed countdown aligned: next sample at 127.
  es.run(30);
  ek.run(30);
  EXPECT_EQ(ms.last_sample_cycle(), 127);
  EXPECT_EQ(mk.last_sample_cycle(), 127);
}

// End-to-end: a low-load switch testbench gives bit-identical stats and
// delivery counts with skipping on vs off.
TEST(EngineIdleSkip, PipelinedTestbenchEquivalence) {
  const SwitchConfig cfg = SwitchConfig::for_ports(4);
  TrafficSpec spec;
  spec.load = 0.02;
  spec.seed = 21;
  PipelinedTestbench stepped(cfg, cfg.n_ports, cfg.cell_format(), spec, true);
  PipelinedTestbench skipped(cfg, cfg.n_ports, cfg.cell_format(), spec, true);
  stepped.engine().set_idle_skip(false);
  skipped.engine().set_idle_skip(true);
  stepped.run(20000);
  skipped.run(20000);
  EXPECT_GT(stepped.delivered(), 0u);
  EXPECT_EQ(stepped.injected(), skipped.injected());
  EXPECT_EQ(stepped.delivered(), skipped.delivered());
  const SwitchStats& a = stepped.dut().stats();
  const SwitchStats& b = skipped.dut().stats();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.idle_cycles, b.idle_cycles);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.read_grants, b.read_grants);
  EXPECT_EQ(a.heads_seen, b.heads_seen);
  EXPECT_TRUE(stepped.scoreboard().ok());
  EXPECT_TRUE(skipped.scoreboard().ok());
}

// ---------------------------------------------------------------------------
// set_metrics mid-run (attach / detach / re-attach / period change).

TEST(EngineMetrics, MidRunAttachPreservesSamplingPhase) {
  Chained a(nullptr);
  obs::MetricsRegistry m;
  m.add_gauge("v", [&a] { return static_cast<double>(a.value()); });
  Engine eng;
  eng.add(&a);
  eng.run(7);
  // Attaching at now=7 with period 8 must keep samples on the cycle-7,15,23
  // grid (where cycle-count-after-step is a multiple of 8), not restart the
  // countdown at 8 from here.
  eng.set_metrics(&m, 8);
  eng.run(20);  // Cycles 7..26.
  EXPECT_EQ(m.samples_taken(), 3u);
  EXPECT_EQ(m.last_sample_cycle(), 23);
  const obs::GaugeStats* g = m.find_gauge("v");
  ASSERT_NE(g, nullptr);
  // Gauge pulled after the commit of each sampled cycle: values 8, 16, 24.
  EXPECT_DOUBLE_EQ(g->min, 8.0);
  EXPECT_DOUBLE_EQ(g->last, 24.0);
  EXPECT_DOUBLE_EQ(g->sum, 8.0 + 16.0 + 24.0);
}

TEST(EngineMetrics, DetachStopsSamplingAndReattachReArms) {
  Chained a(nullptr);
  obs::MetricsRegistry m;
  m.add_gauge("v", [&a] { return static_cast<double>(a.value()); });
  Engine eng;
  eng.add(&a);
  eng.set_metrics(&m, 8);
  eng.run(20);  // Samples at cycles 7 and 15.
  EXPECT_EQ(m.samples_taken(), 2u);
  EXPECT_EQ(m.last_sample_cycle(), 15);

  eng.set_metrics(nullptr);
  eng.run(9);  // now = 29; the cycle-23 boundary passes unsampled.
  EXPECT_EQ(m.samples_taken(), 2u);

  eng.set_metrics(&m, 8);  // Re-arm onto the grid: next sample at cycle 31.
  eng.run(5);              // Cycles 29..33.
  EXPECT_EQ(m.samples_taken(), 3u);
  EXPECT_EQ(m.last_sample_cycle(), 31);
  EXPECT_DOUBLE_EQ(m.find_gauge("v")->last, 32.0);
}

TEST(EngineMetrics, PeriodChangeTakesEffectOnNewGrid) {
  Chained a(nullptr);
  obs::MetricsRegistry m;
  m.add_gauge("v", [&a] { return static_cast<double>(a.value()); });
  Engine eng;
  eng.add(&a);
  eng.set_metrics(&m, 4);
  eng.run(10);  // Samples at cycles 3 and 7.
  EXPECT_EQ(m.samples_taken(), 2u);
  EXPECT_EQ(m.last_sample_cycle(), 7);

  eng.set_metrics(&m, 3);  // At now=10: next multiple-of-3 boundary is cycle 11.
  eng.run(6);              // Cycles 10..15 -> samples at 11 and 14.
  EXPECT_EQ(m.samples_taken(), 4u);
  EXPECT_EQ(m.last_sample_cycle(), 14);
  EXPECT_DOUBLE_EQ(m.find_gauge("v")->last, 15.0);
}

TEST(Tracer, WritesEventsWhenEnabled) {
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  Tracer tr(f, true);
  tr.event(42, "hello %d", 7);
  tr.line("raw");
  tr.set_enabled(false);
  tr.event(43, "suppressed");
  std::rewind(f);
  std::string all(512, '\0');
  all.resize(std::fread(all.data(), 1, all.size(), f));
  EXPECT_NE(all.find("42"), std::string::npos);
  EXPECT_NE(all.find("hello 7"), std::string::npos);
  EXPECT_NE(all.find("raw"), std::string::npos);
  EXPECT_EQ(all.find("suppressed"), std::string::npos);
  std::fclose(f);
}

}  // namespace
}  // namespace pmsb
