// Tests of the crosspoint-queued baseline (Cao & Panwar): functional
// correctness via the scoreboard, full line rate on contention-free
// traffic, the static-partitioning overflow behaviour that distinguishes
// it from a shared pool, and the two output schedulers.

#include <gtest/gtest.h>

#include "arch/cq/cq_switch.hpp"
#include "core/testbench.hpp"

namespace pmsb {
namespace {

using CqTestbench = Testbench<CrosspointQueuedSwitch, CqConfig>;

CqConfig cq_cfg(unsigned n = 4, unsigned cap_cells = 32,
                CqScheduler sched = CqScheduler::kRoundRobin) {
  CqConfig cfg;
  cfg.base.n_ports = n;
  cfg.base.word_bits = 16;
  cfg.base.cell_words = 2 * n;
  cfg.base.capacity_segments = cap_cells;
  cfg.sched = sched;
  return cfg;
}

TEST(CqSwitch, RejectsPoolSmallerThanCrosspointGrid) {
  // 4x4 needs at least 16 cells; 8 cannot give every crosspoint a buffer.
  const CqConfig cfg = cq_cfg(4, 8);
  EXPECT_THROW(CrosspointQueuedSwitch{cfg}, std::invalid_argument);
}

TEST(CqSwitch, SplitsPoolEvenlyAcrossCrosspoints) {
  const CqConfig cfg = cq_cfg(4, 33);
  CrosspointQueuedSwitch sw(cfg);
  EXPECT_EQ(sw.crosspoint_capacity(), 2u);  // floor(33 / 16)
}

TEST(CqSwitch, StoreAndForwardDelivery) {
  // One cell in a quiet switch: assembled over L cycles, queued at its
  // crosspoint, then shifted out -- head appears after full assembly.
  const CqConfig cfg = cq_cfg();
  CrosspointQueuedSwitch sw(cfg);
  Engine eng;
  eng.add(&sw);
  const CellFormat fmt = cfg.base.cell_format();
  std::vector<Flit> out_trace;
  for (unsigned k = 0; k < 3 * fmt.length_words; ++k) {
    if (k < fmt.length_words)
      sw.in_link(0).drive_next(Flit{true, k == 0, cell_word(9, 1, k, fmt)});
    eng.step();
    out_trace.push_back(sw.out_link(1).now());
  }
  unsigned head_at = 0;
  for (unsigned k = 0; k < out_trace.size(); ++k) {
    if (out_trace[k].valid && out_trace[k].sop) {
      head_at = k;
      break;
    }
  }
  // Assembly completes when the tail is on the wire (cycle L); the cell is
  // queued at the commit, read the following cycle, so the head cannot
  // appear before cycle L + 1.
  EXPECT_GE(head_at, fmt.length_words);
  EXPECT_EQ(out_trace[head_at].data, cell_word(9, 1, 0, fmt));
  for (int k = 0; k < 40; ++k) eng.step();
  EXPECT_TRUE(sw.drained());
  EXPECT_EQ(sw.stats().read_grants, 1u);
}

struct CqCase {
  unsigned n;
  double load;
  unsigned cap;
  ArrivalKind arrivals;
  PatternKind pattern;
  CqScheduler sched;
  std::uint64_t seed;
};

void PrintTo(const CqCase& c, std::ostream* os) {
  *os << "n" << c.n << "_load" << static_cast<int>(c.load * 100) << "_cap" << c.cap << "_arr"
      << static_cast<int>(c.arrivals) << "_pat" << static_cast<int>(c.pattern) << "_sched"
      << static_cast<int>(c.sched) << "_seed" << c.seed;
}

class CqRandom : public ::testing::TestWithParam<CqCase> {};

TEST_P(CqRandom, ScoreboardCleanAndDrains) {
  const CqCase& cc = GetParam();
  const CqConfig cfg = cq_cfg(cc.n, cc.cap, cc.sched);
  TrafficSpec spec;
  spec.arrivals = cc.arrivals;
  spec.pattern = cc.pattern;
  spec.load = cc.load;
  spec.seed = cc.seed;
  CqTestbench tb(cfg, cfg.base.n_ports, cfg.base.cell_format(), spec);
  tb.run(15000);
  ASSERT_TRUE(tb.drain(500000));
  EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
  EXPECT_TRUE(tb.scoreboard().fully_drained());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CqRandom,
    ::testing::Values(
        CqCase{2, 0.5, 16, ArrivalKind::kGeometric, PatternKind::kUniform,
               CqScheduler::kRoundRobin, 181},
        CqCase{4, 0.8, 32, ArrivalKind::kGeometric, PatternKind::kUniform,
               CqScheduler::kRoundRobin, 182},
        CqCase{4, 1.0, 32, ArrivalKind::kSaturated, PatternKind::kUniform,
               CqScheduler::kLongestQueue, 183},
        CqCase{4, 1.0, 16, ArrivalKind::kSaturated, PatternKind::kHotspot,
               CqScheduler::kRoundRobin, 184},
        CqCase{8, 0.9, 128, ArrivalKind::kSlotted, PatternKind::kUniform,
               CqScheduler::kLongestQueue, 185},
        CqCase{8, 1.0, 128, ArrivalKind::kSaturated, PatternKind::kPermutation,
               CqScheduler::kRoundRobin, 186}));

TEST(CqSwitch, FullLoadPermutationSustainsLineRate) {
  // Contention-free traffic: every crosspoint column has one active input,
  // no memory port to share -- full line rate, no drops.
  const CqConfig cfg = cq_cfg(4, 32);
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.pattern = PatternKind::kPermutation;
  spec.load = 1.0;
  spec.seed = 190;
  CqTestbench tb(cfg, cfg.base.n_ports, cfg.base.cell_format(), spec);
  tb.run(8000);
  EXPECT_EQ(tb.dut().stats().dropped(), 0u);
  EXPECT_GE(tb.delivered(), 4u * (8000u / 8 - 6));
}

TEST(CqSwitch, HotspotOverflowsItsCrosspointsWhileDieSitsEmpty) {
  // The static-partitioning cost: a saturated hotspot overflows its n
  // crosspoints even though (n-1)n crosspoints of the same die are idle.
  // A shared pool of the same total size absorbs far more of the burst --
  // the comparison bench_buffer_sharing quantifies; here we pin the drop
  // attribution and that losses happen well below total-buffer exhaustion.
  const CqConfig cfg = cq_cfg(4, 32);  // 2 cells per crosspoint.
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.pattern = PatternKind::kHotspot;
  spec.hot_fraction = 1.0;  // Everyone to output 0.
  spec.load = 1.0;
  spec.seed = 191;
  CqTestbench tb(cfg, cfg.base.n_ports, cfg.base.cell_format(), spec, /*with_scoreboard=*/false);
  tb.run(20000);
  const SwitchStats& st = tb.dut().stats();
  EXPECT_GT(st.dropped_no_addr, 0u);
  EXPECT_EQ(st.dropped_no_slot, 0u);
  // 4 inputs offer to one output that serves 1 cell per cell time: ~3/4 of
  // the offered cells must be lost at the crosspoints.
  EXPECT_GT(static_cast<double>(st.dropped_no_addr),
            0.5 * static_cast<double>(st.heads_seen));
}

TEST(CqSwitch, SchedulersAreDeterministicAndConserve) {
  // Same seed, same scheduler => identical outcome; both schedulers
  // conserve cells (accepted == delivered after drain).
  for (const CqScheduler sched : {CqScheduler::kRoundRobin, CqScheduler::kLongestQueue}) {
    std::uint64_t delivered[2];
    for (int rep = 0; rep < 2; ++rep) {
      const CqConfig cfg = cq_cfg(4, 32, sched);
      TrafficSpec spec;
      spec.load = 0.9;
      spec.seed = 192;
      CqTestbench tb(cfg, cfg.base.n_ports, cfg.base.cell_format(), spec);
      tb.run(12000);
      ASSERT_TRUE(tb.drain(500000));
      ASSERT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
      EXPECT_EQ(tb.dut().stats().accepted, tb.delivered());
      delivered[rep] = tb.delivered();
    }
    EXPECT_EQ(delivered[0], delivered[1]);
  }
}

}  // namespace
}  // namespace pmsb
