// Tests for the parallel experiment runner (src/exp): ThreadPool execution /
// ordering / graceful-shutdown semantics, SweepRunner submission-order
// results and exception propagation, thread-count resolution, and -- the
// property every bench table rests on -- byte-identical sweep results at any
// thread count, for both the slot-time models and the cycle-accurate switch.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "../bench/bench_util.hpp"
#include "arch/shared_buffer.hpp"
#include "exp/sweep.hpp"
#include "exp/thread_pool.hpp"

namespace pmsb {
namespace {

using bench::CycleRun;
using bench::SlotRun;

// ---- ThreadPool ------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask) {
  std::atomic<int> ran{0};
  exp::ThreadPool pool(4);
  for (int i = 0; i < 100; ++i)
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, SingleWorkerExecutesInFifoOrder) {
  std::vector<int> order;
  std::mutex mu;
  {
    exp::ThreadPool pool(1);
    for (int i = 0; i < 32; ++i)
      pool.submit([&, i] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(i);
      });
    pool.wait_idle();
  }
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPool, DestructorDrainsQueuedWork) {
  // Destroying the pool with work still queued must RUN that work, not drop
  // it (sweep determinism depends on every submitted point executing).
  std::atomic<int> ran{0};
  {
    exp::ThreadPool pool(2);
    for (int i = 0; i < 64; ++i)
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ran.fetch_add(1, std::memory_order_relaxed);
      });
    // No wait_idle(): the destructor must finish the queue itself.
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, OnWorkerStartRunsOncePerWorkerBeforeTasks) {
  std::mutex mu;
  std::vector<unsigned> started;
  std::atomic<int> tasks_seen_all_hooks{0};
  exp::ThreadPoolOptions opts;
  opts.on_worker_start = [&](unsigned worker) {
    std::lock_guard<std::mutex> lock(mu);
    started.push_back(worker);
  };
  exp::ThreadPool pool(3, std::move(opts));
  for (int i = 0; i < 12; ++i)
    pool.submit([&] {
      // Any task's worker ran its hook first (hooks precede the task loop).
      std::lock_guard<std::mutex> lock(mu);
      if (started.size() >= 1) tasks_seen_all_hooks.fetch_add(1);
    });
  pool.wait_idle();
  EXPECT_EQ(tasks_seen_all_hooks.load(), 12);
  std::lock_guard<std::mutex> lock(mu);
  std::sort(started.begin(), started.end());
  // Exactly one hook call per worker, with the worker's own index.
  EXPECT_EQ(started, (std::vector<unsigned>{0, 1, 2}));
}

TEST(ThreadPool, WaitIdleWaitsForExecutingTasks) {
  std::atomic<bool> done{false};
  exp::ThreadPool pool(2);
  pool.submit([&done] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    done.store(true);
  });
  pool.wait_idle();
  EXPECT_TRUE(done.load());
}

// ---- SweepRunner -----------------------------------------------------------

TEST(SweepRunner, ResultsComeBackInSubmissionOrder) {
  exp::SweepRunner runner(4);
  std::vector<std::function<int()>> points;
  for (int i = 0; i < 24; ++i)
    points.push_back([i] {
      // Reverse-staggered sleeps: late submissions finish first, so only
      // the index discipline (not completion order) can keep this sorted.
      std::this_thread::sleep_for(std::chrono::microseconds((24 - i) * 50));
      return i;
    });
  const std::vector<int> r = runner.run(std::move(points));
  ASSERT_EQ(r.size(), 24u);
  for (int i = 0; i < 24; ++i) EXPECT_EQ(r[static_cast<std::size_t>(i)], i);
}

TEST(SweepRunner, SingleThreadRunsInlineOnCaller) {
  exp::SweepRunner runner(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::function<std::thread::id()>> points;
  for (int i = 0; i < 4; ++i)
    points.push_back([] { return std::this_thread::get_id(); });
  for (std::thread::id id : runner.run(std::move(points))) EXPECT_EQ(id, caller);
}

TEST(SweepRunner, EarliestSubmittedExceptionWins) {
  exp::SweepRunner runner(4);
  std::atomic<int> completed{0};
  std::vector<std::function<int()>> points;
  points.push_back([&] {
    completed.fetch_add(1);
    return 0;
  });
  points.push_back([]() -> int { throw std::runtime_error("first failure"); });
  points.push_back([&] {
    completed.fetch_add(1);
    return 2;
  });
  points.push_back([]() -> int { throw std::runtime_error("second failure"); });
  try {
    runner.run(std::move(points));
    FAIL() << "expected the sweep to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first failure");
  }
  // All non-throwing points still ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 2);
}

TEST(SweepRunner, MapPreservesItemOrder) {
  exp::SweepRunner runner(4);
  const std::vector<int> items = {5, 3, 9, 1, 7};
  const std::vector<int> r = runner.map(items, [](int v) { return v * v; });
  ASSERT_EQ(r.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) EXPECT_EQ(r[i], items[i] * items[i]);
}

// ---- thread-count resolution -----------------------------------------------

TEST(ThreadCount, OverrideBeatsEnvironment) {
  exp::set_thread_override(3);
  EXPECT_EQ(exp::thread_count(), 3u);
  exp::set_thread_override(0);  // Clear for the rest of the suite.
  EXPECT_GE(exp::thread_count(), 1u);
}

TEST(ThreadCount, ParseThreadsArgBothSpellings) {
  char prog[] = "bench";
  char flag_eq[] = "--threads=2";
  char* argv_eq[] = {prog, flag_eq};
  EXPECT_EQ(exp::parse_threads_arg(2, argv_eq), 2u);

  char flag[] = "--threads";
  char five[] = "5";
  char* argv_sp[] = {prog, flag, five};
  EXPECT_EQ(exp::parse_threads_arg(3, argv_sp), 5u);

  char other[] = "--benchmark_min_time=0.1";
  char* argv_other[] = {prog, other};
  exp::set_thread_override(0);
  const unsigned resolved = exp::parse_threads_arg(2, argv_other);
  EXPECT_GE(resolved, 1u);  // Unrelated flags are ignored.
  exp::set_thread_override(0);
}

// ---- determinism: identical results at any thread count --------------------

std::vector<SlotRun> slot_sweep(unsigned threads) {
  exp::SweepRunner runner(threads);
  std::vector<std::function<SlotRun()>> points;
  for (double load : {0.5, 0.7, 0.9})
    for (std::uint64_t seed : {11ull, 12ull}) {
      points.push_back([load, seed] {
        return bench::run_uniform([] { return std::make_unique<SharedBufferModel>(8, 64); },
                                  8, load, 20000, seed);
      });
    }
  return runner.run(std::move(points));
}

TEST(SweepDeterminism, SlotModelResultsIdenticalAcrossThreadCounts) {
  const std::vector<SlotRun> one = slot_sweep(1);
  unsigned hw = std::thread::hardware_concurrency();
  if (hw < 2) hw = 4;  // Still exercise the pool path on 1-CPU machines.
  const std::vector<SlotRun> many = slot_sweep(hw);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    // Exact equality, not tolerance: each point owns its Rng and model, so
    // the arithmetic sequence is identical no matter which thread ran it.
    EXPECT_EQ(one[i].throughput, many[i].throughput) << "point " << i;
    EXPECT_EQ(one[i].loss, many[i].loss) << "point " << i;
    EXPECT_EQ(one[i].mean_latency, many[i].mean_latency) << "point " << i;
    EXPECT_EQ(one[i].p99_latency, many[i].p99_latency) << "point " << i;
  }
}

std::vector<CycleRun> cycle_sweep(unsigned threads) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 16;
  cfg.cell_words = 8;
  cfg.capacity_segments = 64;
  exp::SweepRunner runner(threads);
  std::vector<std::function<CycleRun()>> points;
  for (double load : {0.6, 0.9})
    for (std::uint64_t seed : {21ull, 22ull}) {
      TrafficSpec spec;
      spec.load = load;
      spec.seed = seed;
      points.push_back([cfg, spec] { return bench::run_pipelined(cfg, spec, 6000, 600); });
    }
  return runner.run(std::move(points));
}

TEST(SweepDeterminism, CycleAccurateResultsIdenticalAcrossThreadCounts) {
  const std::vector<CycleRun> one = cycle_sweep(1);
  unsigned hw = std::thread::hardware_concurrency();
  if (hw < 2) hw = 4;
  const std::vector<CycleRun> many = cycle_sweep(hw);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    EXPECT_EQ(one[i].stats.accepted, many[i].stats.accepted) << "point " << i;
    EXPECT_EQ(one[i].stats.read_grants, many[i].stats.read_grants) << "point " << i;
    EXPECT_EQ(one[i].output_utilization, many[i].output_utilization) << "point " << i;
    EXPECT_EQ(one[i].mean_buffer_occupancy, many[i].mean_buffer_occupancy) << "point " << i;
    EXPECT_EQ(one[i].mean_queue_depth, many[i].mean_queue_depth) << "point " << i;
    EXPECT_EQ(one[i].buffer_peak, many[i].buffer_peak) << "point " << i;
    EXPECT_EQ(one[i].head_latency.mean(), many[i].head_latency.mean()) << "point " << i;
  }
}

}  // namespace
}  // namespace pmsb
