// Tests of the header-translation substrate (the figure-6 RT block): the
// routing table, VC field codec, and the HeaderTranslator component --
// standalone, chained (multi-hop VC translation), and feeding a switch.

#include <gtest/gtest.h>

#include "core/routing_table.hpp"
#include "core/switch.hpp"
#include "sim/engine.hpp"
#include "sim/wire.hpp"

namespace pmsb {
namespace {

CellFormat fmt16() { return CellFormat{16, 2, 8}; }

TEST(RoutingTable, ProgramLookupInvalidate) {
  RoutingTable rt(6);
  EXPECT_EQ(rt.size(), 64u);
  EXPECT_FALSE(rt.lookup(5).valid);
  rt.program(5, 3, 17);
  EXPECT_TRUE(rt.lookup(5).valid);
  EXPECT_EQ(rt.lookup(5).out_port, 3);
  EXPECT_EQ(rt.lookup(5).next_vc, 17u);
  rt.invalidate(5);
  EXPECT_FALSE(rt.lookup(5).valid);
}

TEST(RoutingTableDeath, OutOfRange) {
  RoutingTable rt(4);
  EXPECT_DEATH(rt.lookup(16), "beyond");
  EXPECT_DEATH(rt.program(3, 0, 16), "beyond");
}

TEST(HeaderCodec, VcRoundTrip) {
  const CellFormat fmt = fmt16();
  // Build a head for dest 2 with a known tag, then rewrite it.
  const Word head = cell_word(1234, 2, 0, fmt);
  const Word rewritten = make_translated_head(head, fmt, 6, /*out=*/1, /*next_vc=*/42);
  EXPECT_EQ(decode_dest(rewritten, fmt), 1u);
  EXPECT_EQ(head_vc(rewritten, fmt, 6), 42u);
  // Tag bits above the VC field are preserved.
  EXPECT_EQ(decode_tag(rewritten, fmt) >> 6, decode_tag(head, fmt) >> 6);
}

struct TranslatorRig {
  CellFormat fmt = fmt16();
  RoutingTable rt{6};
  WireLink in, out;
  WireTicker ticker;
  HeaderTranslator tr;
  Engine eng;

  TranslatorRig() : tr(&in, &out, fmt, &rt) {
    ticker.add(&in);
    ticker.add(&out);
    eng.add(&tr);
    eng.add(&ticker);
  }

  /// Drive a cell whose head carries `vc` toward destination-field `dest`.
  /// Returns the words observed on the output wire (valid cycles only).
  std::vector<Flit> send_and_capture(std::uint32_t vc, unsigned dest, Cycle extra = 4) {
    std::vector<Flit> seen;
    for (unsigned k = 0; k < fmt.length_words + extra; ++k) {
      if (k < fmt.length_words) {
        Word w = cell_word(99, dest, k, fmt);
        if (k == 0) w = make_translated_head(w, fmt, 6, dest, vc);
        in.drive_next(Flit{true, k == 0, w});
      }
      eng.step();
      if (out.now().valid) seen.push_back(out.now());
    }
    return seen;
  }
};

TEST(HeaderTranslator, TranslatesHeadAndPassesBody) {
  TranslatorRig rig;
  rig.rt.program(7, /*out=*/2, /*next_vc=*/33);
  const auto seen = rig.send_and_capture(7, 1);
  ASSERT_EQ(seen.size(), rig.fmt.length_words);
  EXPECT_TRUE(seen[0].sop);
  EXPECT_EQ(decode_dest(seen[0].data, rig.fmt), 2u);        // Rewritten port.
  EXPECT_EQ(head_vc(seen[0].data, rig.fmt, 6), 33u);        // Rewritten VC.
  for (unsigned k = 1; k < rig.fmt.length_words; ++k) {
    EXPECT_EQ(seen[k].data, cell_word(99, 1, k, rig.fmt));  // Body untouched.
  }
  EXPECT_EQ(rig.tr.cells_translated(), 1u);
  EXPECT_EQ(rig.tr.cells_unroutable(), 0u);
}

TEST(HeaderTranslator, UnroutableVcDiscardsWholeCell) {
  TranslatorRig rig;  // Table empty: everything unroutable.
  const auto seen = rig.send_and_capture(9, 1);
  EXPECT_TRUE(seen.empty());
  EXPECT_EQ(rig.tr.cells_unroutable(), 1u);
  // The next, routable cell still goes through cleanly.
  rig.rt.program(3, 1, 11);
  const auto ok = rig.send_and_capture(3, 2);
  ASSERT_EQ(ok.size(), rig.fmt.length_words);
  EXPECT_EQ(head_vc(ok[0].data, rig.fmt, 6), 11u);
}

TEST(HeaderTranslator, BackToBackCells) {
  TranslatorRig rig;
  rig.rt.program(1, 0, 2);
  rig.rt.program(2, 1, 3);
  std::vector<Flit> seen;
  for (unsigned c = 0; c < 2; ++c) {
    for (unsigned k = 0; k < rig.fmt.length_words; ++k) {
      Word w = cell_word(100 + c, 0, k, rig.fmt);
      if (k == 0) w = make_translated_head(w, rig.fmt, 6, 0, c + 1);
      rig.in.drive_next(Flit{true, k == 0, w});
      rig.eng.step();
      if (rig.out.now().valid) seen.push_back(rig.out.now());
    }
  }
  for (int k = 0; k < 4; ++k) {
    rig.eng.step();
    if (rig.out.now().valid) seen.push_back(rig.out.now());
  }
  ASSERT_EQ(seen.size(), 2u * rig.fmt.length_words);
  EXPECT_EQ(head_vc(seen[0].data, rig.fmt, 6), 2u);
  EXPECT_EQ(head_vc(seen[rig.fmt.length_words].data, rig.fmt, 6), 3u);
}

TEST(HeaderTranslator, ChainedHopsTranslateTwice) {
  // Two translators in series: VC 5 -> (port 1, VC 9) -> (port 3, VC 20).
  const CellFormat fmt = fmt16();
  RoutingTable rt1(6), rt2(6);
  rt1.program(5, 1, 9);
  rt2.program(9, 3, 20);
  WireLink a, b, c;
  HeaderTranslator t1(&a, &b, fmt, &rt1);
  HeaderTranslator t2(&b, &c, fmt, &rt2);
  WireTicker ticker;
  ticker.add(&a);
  ticker.add(&b);
  ticker.add(&c);
  Engine eng;
  eng.add(&t1);
  eng.add(&t2);
  eng.add(&ticker);
  Flit head_out;
  for (unsigned k = 0; k < fmt.length_words + 4; ++k) {
    if (k < fmt.length_words) {
      Word w = cell_word(7, 0, k, fmt);
      if (k == 0) w = make_translated_head(w, fmt, 6, 0, 5);
      a.drive_next(Flit{true, k == 0, w});
    }
    eng.step();
    if (c.now().sop) head_out = c.now();
  }
  ASSERT_TRUE(head_out.valid);
  EXPECT_EQ(decode_dest(head_out.data, fmt), 3u);
  EXPECT_EQ(head_vc(head_out.data, fmt, 6), 20u);
}

TEST(HeaderTranslator, RoutesCellsIntoSwitchPorts) {
  // End to end: a translator in front of a 4x4 switch steers cells by VC.
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 16;
  cfg.cell_words = 8;
  cfg.capacity_segments = 16;
  PipelinedSwitch sw(cfg);
  RoutingTable rt(6);
  rt.program(/*vc=*/4, /*out=*/3, /*next_vc=*/8);
  WireLink wire_in;
  HeaderTranslator tr(&wire_in, &sw.in_link(0), cfg.cell_format(), &rt);
  WireTicker ticker;
  ticker.add(&wire_in);
  Engine eng;
  eng.add(&tr);
  eng.add(&sw);
  eng.add(&ticker);
  const CellFormat fmt = cfg.cell_format();
  bool seen_on_3 = false;
  for (unsigned k = 0; k < fmt.length_words + 8; ++k) {
    if (k < fmt.length_words) {
      Word w = cell_word(55, /*dest (pre-translation)=*/0, k, fmt);
      if (k == 0) w = make_translated_head(w, fmt, 6, 0, 4);
      wire_in.drive_next(Flit{true, k == 0, w});
    }
    eng.step();
    seen_on_3 |= sw.out_link(3).now().valid;
  }
  EXPECT_TRUE(seen_on_3);
  EXPECT_EQ(sw.stats().read_grants, 1u);
}

}  // namespace
}  // namespace pmsb
