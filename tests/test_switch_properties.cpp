// Property tests of the paper's architectural invariants (DESIGN.md §4),
// including multi-segment cells (cell_words = m * 2n, section 3.2's
// "packet size equal to or a multiple of" the quantum).
//
// Several invariants are enforced by always-on PMSB_CHECK assertions deep in
// the datapath (single-ported banks, latch overwrite windows, output-row
// sharing, credit/flow accounting); for those, *completing a run at all* is
// the property. The tests here add the observable end-to-end properties.

#include <gtest/gtest.h>

#include "core/switch.hpp"
#include "core/testbench.hpp"
#include "sim/link_pipeline.hpp"

namespace pmsb {
namespace {

struct SegCase {
  unsigned n;
  unsigned segments;
  double load;
  unsigned capacity_cells;
  std::uint64_t seed;
};

void PrintTo(const SegCase& c, std::ostream* os) {
  *os << "n" << c.n << "_m" << c.segments << "_load" << static_cast<int>(c.load * 100)
      << "_cap" << c.capacity_cells << "_seed" << c.seed;
}

class MultiSegment : public ::testing::TestWithParam<SegCase> {};

TEST_P(MultiSegment, StreamsWithoutUnderrunAndVerifies) {
  const SegCase& sc = GetParam();
  SwitchConfig cfg;
  cfg.n_ports = sc.n;
  cfg.word_bits = 16;
  cfg.cell_words = sc.segments * 2 * sc.n;
  cfg.capacity_segments = sc.capacity_cells * sc.segments;
  TrafficSpec spec;
  spec.load = sc.load;
  spec.seed = sc.seed;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);

  tb.run(20000);
  ASSERT_TRUE(tb.drain(500000));
  // CellSink asserts output contiguity: any segment-streaming underrun would
  // have aborted. The scoreboard checks content and order.
  EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
  EXPECT_TRUE(tb.scoreboard().fully_drained());
  const auto& st = tb.dut().stats();
  EXPECT_EQ(st.heads_seen, st.accepted + st.dropped());
  EXPECT_EQ(st.accepted, st.read_grants);  // Everything stored departed.
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MultiSegment,
    ::testing::Values(SegCase{2, 2, 0.6, 16, 31}, SegCase{2, 4, 0.9, 16, 32},
                      SegCase{4, 2, 0.7, 32, 33}, SegCase{4, 3, 1.0, 16, 34},
                      SegCase{8, 2, 0.8, 32, 35}, SegCase{2, 8, 1.0, 8, 36},
                      SegCase{4, 2, 1.0, 4, 37}));

TEST(SwitchProperties, IdleSwitchStaysIdle) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 16;
  cfg.cell_words = 8;
  cfg.capacity_segments = 32;
  PipelinedSwitch sw(cfg);
  Engine eng;
  eng.add(&sw);
  eng.run(1000);
  EXPECT_EQ(sw.stats().idle_cycles, 1000u);
  EXPECT_TRUE(sw.drained());
  for (unsigned o = 0; o < 4; ++o) EXPECT_FALSE(sw.out_link(o).now().valid);
}

TEST(SwitchProperties, PeakOccupancyNeverExceedsCapacity) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 16;
  cfg.cell_words = 8;
  cfg.capacity_segments = 8;
  TrafficSpec spec;
  spec.load = 1.0;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.pattern = PatternKind::kHotspot;
  spec.hot_fraction = 0.9;
  spec.seed = 40;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(20000);
  EXPECT_LE(tb.dut().buffer_peak(), cfg.capacity_segments);
  EXPECT_EQ(tb.dut().buffer_peak(), cfg.capacity_segments);  // It does fill.
}

TEST(SwitchProperties, DeterministicAcrossRuns) {
  auto run_once = [] {
    SwitchConfig cfg;
    cfg.n_ports = 4;
    cfg.word_bits = 16;
    cfg.cell_words = 8;
    cfg.capacity_segments = 16;
    TrafficSpec spec;
    spec.load = 0.9;
    spec.seed = 99;
    PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
    tb.run(10000);
    const auto& st = tb.dut().stats();
    return std::tuple{st.accepted, st.dropped_no_addr, st.read_grants, st.snoop_initiations,
                      tb.delivered()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SwitchProperties, SaturatedPermutationIsAllCutThrough) {
  // Contention-free full load: every cell should depart via cut-through
  // (the read wave starts before the tail has arrived).
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 16;
  cfg.cell_words = 8;
  cfg.capacity_segments = 32;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.pattern = PatternKind::kPermutation;
  spec.load = 1.0;
  spec.seed = 41;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(8000);
  const auto& st = tb.dut().stats();
  EXPECT_EQ(st.cut_through_cells, st.read_grants);
  EXPECT_EQ(st.dropped(), 0u);
}

TEST(SwitchProperties, HeavyLoadShiftsToStoreAndForward) {
  // With a hot output the queue backs up: most departures to it are from
  // the buffer, not cut-through.
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 16;
  cfg.cell_words = 8;
  cfg.capacity_segments = 64;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.pattern = PatternKind::kHotspot;
  spec.hot_fraction = 1.0;
  spec.load = 1.0;
  spec.seed = 42;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(20000);
  const auto& st = tb.dut().stats();
  EXPECT_LT(st.cut_through_cells, st.read_grants / 4);
}

TEST(SwitchProperties, ReadsHavePriorityOverWrites) {
  // At full uniform load the switch should never leave an output idle while
  // it has queued cells and a free slot; measured as: read initiations keep
  // pace with accepted cells.
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 16;
  cfg.cell_words = 8;
  cfg.capacity_segments = 64;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.load = 1.0;
  spec.seed = 43;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(40000);
  const auto& st = tb.dut().stats();
  // Output utilization within a few percent of 100% (uniform saturated
  // traffic on a shared buffer sustains full output rates).
  const double out_util = static_cast<double>(st.read_grants) * cfg.cell_words /
                          (4.0 * static_cast<double>(st.cycles));
  EXPECT_GT(out_util, 0.93);
}

TEST(SwitchProperties, LatencyLowerBoundHolds) {
  SwitchConfig cfg;
  cfg.n_ports = 8;
  cfg.word_bits = 16;
  cfg.cell_words = 16;
  cfg.capacity_segments = 128;
  TrafficSpec spec;
  spec.load = 0.5;
  spec.seed = 44;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(30000);
  tb.drain(500000);
  ASSERT_GT(tb.scoreboard().latency().samples(), 0u);
  EXPECT_GE(tb.scoreboard().latency().min(), 2u);
}

TEST(SwitchProperties, Telegraphos3ConfigRunsCleanly) {
  const SwitchConfig cfg = telegraphos3();
  TrafficSpec spec;
  spec.load = 0.9;
  spec.seed = 45;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(30000);
  ASSERT_TRUE(tb.drain(500000));
  EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
  EXPECT_EQ(tb.dut().stats().dropped(), 0u);  // 256-cell buffer at 0.9 load.
}

TEST(SwitchProperties, OutputLimitProtectsOtherOutputs) {
  // Anti-hogging extension (SwitchConfig::out_queue_limit): with one
  // saturated output and no cap, the hot queue absorbs the whole pool and
  // strangles everyone; the cap restores the other outputs.
  auto delivered_with_limit = [](unsigned limit) {
    SwitchConfig cfg;
    cfg.n_ports = 4;
    cfg.word_bits = 16;
    cfg.cell_words = 8;
    cfg.capacity_segments = 32;
    cfg.out_queue_limit = limit;
    TrafficSpec spec;
    spec.arrivals = ArrivalKind::kSaturated;
    spec.pattern = PatternKind::kHotspot;
    spec.hot_fraction = 0.6;
    spec.load = 1.0;
    spec.seed = 77;
    PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
    tb.run(40000);
    tb.drain(500000);
    EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
    EXPECT_TRUE(tb.scoreboard().fully_drained());
    if (limit != 0) {
      EXPECT_GT(tb.dut().stats().dropped_out_limit, 0u);
    }
    return tb.delivered();
  };
  const std::uint64_t uncapped = delivered_with_limit(0);
  const std::uint64_t capped = delivered_with_limit(8);
  EXPECT_GT(capped, uncapped + uncapped / 4);  // At least 25% more carried.
}

TEST(SwitchProperties, OutputLimitConservation) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 16;
  cfg.cell_words = 8;
  cfg.capacity_segments = 16;
  cfg.out_queue_limit = 4;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.load = 1.0;
  spec.seed = 78;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(20000);
  ASSERT_TRUE(tb.drain(500000));
  const auto& st = tb.dut().stats();
  EXPECT_EQ(tb.injected(), tb.delivered() + st.dropped());
  EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
}

TEST(SwitchProperties, LinkPipeliningShiftsLatencyUniformly) {
  // Section 4.3: pipelining the long link wires delays every cell by the
  // same constant and changes nothing else. Wrap each input and output link
  // in a k-stage LinkPipeline: head latency becomes 2 + 2*(k+1).
  for (unsigned k : {1u, 3u}) {
    SwitchConfig cfg;
    cfg.n_ports = 2;
    cfg.word_bits = 8;
    cfg.cell_words = 4;
    cfg.capacity_segments = 16;
    PipelinedSwitch sw(cfg);
    Engine eng;
    WireTicker ticker;
    std::vector<WireLink> gen_wires(2), sink_wires(2);
    std::vector<std::unique_ptr<LinkPipeline>> pipes;
    UniformDest dests(2);
    Rng seeder(91);
    std::vector<std::unique_ptr<CellSource>> sources;
    std::vector<std::unique_ptr<CellSink>> sinks;
    Scoreboard sb(2, 2, cfg.cell_format());
    for (unsigned i = 0; i < 2; ++i) {
      sources.push_back(std::make_unique<CellSource>(i, &gen_wires[i], cfg.cell_format(),
                                                     &dests, ArrivalKind::kGeometric, 0.2,
                                                     seeder.split()));
      pipes.push_back(std::make_unique<LinkPipeline>(&gen_wires[i], &sw.in_link(i), k));
      pipes.push_back(std::make_unique<LinkPipeline>(&sw.out_link(i), &sink_wires[i], k));
      sinks.push_back(std::make_unique<CellSink>(i, &sink_wires[i], cfg.cell_format()));
      ticker.add(&gen_wires[i]);
      ticker.add(&sink_wires[i]);
    }
    sb.set_input_wire_delay(k + 1);
    sb.attach(sw, sources, sinks);
    for (auto& s : sources) eng.add(s.get());
    for (auto& p : pipes) eng.add(p.get());
    eng.add(&sw);
    for (auto& s : sinks) eng.add(s.get());
    eng.add(&ticker);
    eng.run(30000);
    ASSERT_GT(sb.latency().samples(), 100u);
    // Scoreboard a0 is the generator-side wire cycle; the head crosses two
    // pipelined links (k+1 cycles each) plus the 2-cycle switch minimum.
    EXPECT_EQ(sb.latency().min(), 2u + 2 * (k + 1)) << "k = " << k;
    EXPECT_TRUE(sb.ok()) << sb.errors().front();
  }
}

TEST(SwitchProperties, StaggerPenaltyMatchesSection34Formula) {
  // E6 as a regression test: the same-cycle head-collision penalty measured
  // on the real device matches (p/4)(n-1)/n within sampling noise.
  const unsigned n = 8;
  const double p = 0.4;
  SwitchConfig cfg;
  cfg.n_ports = n;
  cfg.word_bits = 16;
  cfg.cell_words = 2 * n;
  cfg.capacity_segments = 8 * n;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kGeometric;
  spec.load = p;
  spec.seed = 92;
  PipelinedTestbench tb(cfg, n, cfg.cell_format(), spec, /*scoreboard=*/false);
  Cycle last = -1;
  unsigned k_now = 0;
  std::uint64_t heads = 0, collisions = 0;
  SwitchEvents ev;
  ev.on_head = [&](unsigned, Cycle a0, unsigned) {
    if (a0 == last) {
      ++k_now;
    } else {
      heads += k_now;
      collisions += static_cast<std::uint64_t>(k_now) * (k_now > 0 ? k_now - 1 : 0);
      last = a0;
      k_now = 1;
    }
  };
  const Subscription ev_sub = tb.dut().events().subscribe(std::move(ev));
  tb.run(300000);
  const double measured = static_cast<double>(collisions) / (2.0 * static_cast<double>(heads));
  const double analytic = (p / 4.0) * (n - 1.0) / n;
  EXPECT_NEAR(measured, analytic, 0.15 * analytic);
}

TEST(SwitchProperties, Telegraphos1And2ConfigsRunCleanly) {
  for (const SwitchConfig& cfg : {telegraphos1(), telegraphos2()}) {
    TrafficSpec spec;
    spec.load = 0.8;
    spec.seed = 46;
    PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
    tb.run(20000);
    ASSERT_TRUE(tb.drain(500000));
    EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
  }
}

}  // namespace
}  // namespace pmsb
