// Tests of the multi-switch wormhole substrate: topology arithmetic, router
// invariants, delivery, flow control, deadlock freedom, and the qualitative
// saturation behaviour the paper cites from [Dally90].
//
// WormholeNetwork and CreditBridge are deprecated shims (superseded by
// fabric::Fabric::build); this file intentionally keeps them covered until
// their removal next release.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/switch.hpp"
#include "core/testbench.hpp"
#include "net/credit_bridge.hpp"
#include "net/node.hpp"
#include "net/topology.hpp"
#include "net/wormhole.hpp"

namespace pmsb::net {
namespace {

TEST(Topology, MeshNeighbors) {
  Topology t{TopologyKind::kMesh2D, 4, 4};
  EXPECT_EQ(t.neighbor(5, kEast), 6);
  EXPECT_EQ(t.neighbor(5, kWest), 4);
  EXPECT_EQ(t.neighbor(5, kNorth), 1);
  EXPECT_EQ(t.neighbor(5, kSouth), 9);
  EXPECT_EQ(t.neighbor(3, kEast), -1);   // Edge.
  EXPECT_EQ(t.neighbor(0, kNorth), -1);  // Edge.
}

TEST(Topology, TorusWraps) {
  Topology t{TopologyKind::kTorus2D, 4, 4};
  EXPECT_EQ(t.neighbor(3, kEast), 0);
  EXPECT_EQ(t.neighbor(0, kWest), 3);
  EXPECT_EQ(t.neighbor(0, kNorth), 12);
  EXPECT_EQ(t.neighbor(12, kSouth), 0);
}

TEST(Topology, XyRoutingGoesXFirst) {
  Topology t{TopologyKind::kMesh2D, 4, 4};
  EXPECT_EQ(t.route_xy(0, 6), kEast);   // (0,0) -> (2,1): X first.
  EXPECT_EQ(t.route_xy(2, 6), kSouth);  // Same column: then Y.
  EXPECT_EQ(t.route_xy(6, 6), kLocal);
  EXPECT_EQ(t.route_xy(7, 4), kWest);
}

TEST(Topology, TorusRoutesShortestWay) {
  Topology t{TopologyKind::kTorus2D, 8, 1};
  EXPECT_EQ(t.route_xy(0, 1), kEast);
  EXPECT_EQ(t.route_xy(0, 7), kWest);  // One hop west beats 7 east.
}

TEST(Topology, TorusTieBreaksGoEastAndSouth) {
  // Even-sized torus: the two ways around are equidistant; the route must
  // deterministically take the positive direction (east, then south).
  Topology t{TopologyKind::kTorus2D, 8, 8};
  EXPECT_EQ(t.route_xy(t.node_at(0, 0), t.node_at(4, 0)), kEast);   // 4 == 8 - 4.
  EXPECT_EQ(t.route_xy(t.node_at(0, 0), t.node_at(0, 4)), kSouth);  // Y tie too.
  EXPECT_EQ(t.route_xy(t.node_at(6, 3), t.node_at(2, 3)), kEast);   // Tie from x=6.
  // One short of the tie still goes the short way.
  EXPECT_EQ(t.route_xy(t.node_at(0, 0), t.node_at(5, 0)), kWest);
}

TEST(Topology, MeshEdgeNeighborsAreAbsent) {
  Topology t{TopologyKind::kMesh2D, 4, 4};
  for (unsigned x = 0; x < 4; ++x) {
    EXPECT_EQ(t.neighbor(t.node_at(x, 0), kNorth), -1) << x;
    EXPECT_EQ(t.neighbor(t.node_at(x, 3), kSouth), -1) << x;
  }
  for (unsigned y = 0; y < 4; ++y) {
    EXPECT_EQ(t.neighbor(t.node_at(0, y), kWest), -1) << y;
    EXPECT_EQ(t.neighbor(t.node_at(3, y), kEast), -1) << y;
  }
  // Interior nodes have all four.
  for (Port p : {kEast, kWest, kNorth, kSouth})
    EXPECT_GE(t.neighbor(t.node_at(1, 1), p), 0);
}

TEST(Topology, OppositePortsPair) {
  EXPECT_EQ(opposite(kEast), kWest);
  EXPECT_EQ(opposite(kWest), kEast);
  EXPECT_EQ(opposite(kNorth), kSouth);
  EXPECT_EQ(opposite(kSouth), kNorth);
  // Links are symmetric: neighbor through p sees us through opposite(p).
  Topology t{TopologyKind::kTorus2D, 4, 4};
  for (unsigned n = 0; n < t.nodes(); ++n) {
    for (Port p : {kEast, kWest, kNorth, kSouth}) {
      const int m = t.neighbor(n, p);
      ASSERT_GE(m, 0);
      EXPECT_EQ(t.neighbor(static_cast<unsigned>(m), opposite(p)), static_cast<int>(n));
    }
  }
}

TEST(Topology, HopsMatchesRouteXyPathLength) {
  for (Topology t : {Topology{TopologyKind::kMesh2D, 4, 3},
                     Topology{TopologyKind::kTorus2D, 4, 4},
                     Topology{TopologyKind::kRing, 6, 1}}) {
    for (unsigned a = 0; a < t.nodes(); ++a) {
      for (unsigned b = 0; b < t.nodes(); ++b) {
        // Walk the route_xy path and count links.
        unsigned cur = a, steps = 0;
        while (cur != b) {
          const Port p = t.route_xy(cur, b);
          ASSERT_NE(p, kLocal);
          const int next = t.neighbor(cur, p);
          ASSERT_GE(next, 0);
          cur = static_cast<unsigned>(next);
          ASSERT_LE(++steps, t.nodes());  // No routing loops.
        }
        EXPECT_EQ(t.hops(a, b), steps) << a << "->" << b;
      }
    }
    EXPECT_EQ(t.hops(0, 0), 0u);
  }
}

TEST(Topology, DiameterIsMaxPairwiseHops) {
  for (Topology t : {Topology{TopologyKind::kMesh2D, 4, 3},
                     Topology{TopologyKind::kTorus2D, 4, 4},
                     Topology{TopologyKind::kTorus2D, 8, 8},
                     Topology{TopologyKind::kRing, 6, 1},
                     Topology{TopologyKind::kRing, 7, 1}}) {
    unsigned worst = 0;
    for (unsigned a = 0; a < t.nodes(); ++a)
      for (unsigned b = 0; b < t.nodes(); ++b) worst = std::max(worst, t.hops(a, b));
    EXPECT_EQ(t.diameter(), worst) << t.describe();
  }
  // Closed forms: full span on a mesh, half the wrap on torus/ring.
  EXPECT_EQ((Topology{TopologyKind::kMesh2D, 5, 4}.diameter()), 4u + 3u);
  EXPECT_EQ((Topology{TopologyKind::kTorus2D, 8, 8}.diameter()), 4u + 4u);
  EXPECT_EQ((Topology{TopologyKind::kRing, 8, 1}.diameter()), 4u);
}

TEST(Topology, DescribeAndRequiredPorts) {
  EXPECT_EQ((Topology{TopologyKind::kTorus2D, 8, 8}.describe()), "torus2d 8x8");
  EXPECT_EQ((Topology{TopologyKind::kRing, 6, 1}.describe()), "ring 6x1");
  EXPECT_EQ((Topology{TopologyKind::kMesh2D, 4, 3}.required_ports()), 4u);
  EXPECT_EQ((Topology{TopologyKind::kRing, 6, 1}.required_ports()), 2u);
}

TEST(Router, OwnershipHoldsUntilTail) {
  Topology t{TopologyKind::kMesh2D, 2, 1};
  WormholeRouter r(0, t, 4);
  // Two-flit message from local port to the east.
  NetFlit head;
  head.valid = true;
  head.head = true;
  head.dest = 1;
  NetFlit tail = head;
  tail.head = false;
  tail.tail = true;
  r.accept(kLocal, head);
  auto all_ok = [](unsigned, unsigned) { return true; };
  std::vector<WormholeRouter::Move> moves;
  r.decide(all_ok, moves);
  ASSERT_TRUE(moves[kEast].valid);
  EXPECT_EQ(moves[kEast].in_port, static_cast<unsigned>(kLocal));
  (void)r.pop_for(kEast, moves[kEast]);
  r.accept(kLocal, tail);
  r.decide(all_ok, moves);
  ASSERT_TRUE(moves[kEast].valid);
  const NetFlit f = r.pop_for(kEast, moves[kEast]);
  EXPECT_TRUE(f.tail);
  EXPECT_TRUE(r.idle());
}

TEST(Router, BlockedByCredits) {
  Topology t{TopologyKind::kMesh2D, 2, 1};
  WormholeRouter r(0, t, 4);
  NetFlit head;
  head.valid = true;
  head.head = true;
  head.dest = 1;
  r.accept(kLocal, head);
  std::vector<WormholeRouter::Move> moves;
  r.decide([](unsigned out, unsigned) { return out != kEast; }, moves);
  EXPECT_FALSE(moves[kEast].valid);
}

TEST(Router, LanesSerializeIndependentMessages) {
  // Two messages from different inputs to the same output: with 2 lanes,
  // both acquire a lane and their flits interleave on the physical link.
  Topology t{TopologyKind::kMesh2D, 2, 1};
  WormholeRouter r(0, t, 8, /*lanes=*/2);
  auto mk = [](bool head, bool tail, std::uint64_t id, std::uint32_t lane) {
    NetFlit f;
    f.valid = true;
    f.head = head;
    f.tail = tail;
    f.dest = 1;
    f.msg_id = id;
    f.lane = lane;
    return f;
  };
  r.accept(kLocal, mk(true, false, 1, 0));
  r.accept(kNorth, mk(true, false, 2, 0));
  auto all_ok = [](unsigned, unsigned) { return true; };
  std::vector<WormholeRouter::Move> moves;
  // Cycle 1: one head allocates a lane.
  r.decide(all_ok, moves);
  ASSERT_TRUE(moves[kEast].valid);
  const NetFlit f1 = r.pop_for(kEast, moves[kEast]);
  // Cycle 2: the second head gets the other lane.
  r.decide(all_ok, moves);
  ASSERT_TRUE(moves[kEast].valid);
  const NetFlit f2 = r.pop_for(kEast, moves[kEast]);
  EXPECT_NE(f1.msg_id, f2.msg_id);
  EXPECT_NE(f1.lane, f2.lane);  // Distinct downstream lanes.
  // Tails release the lanes.
  r.accept(kLocal, mk(false, true, 1, 0));
  r.accept(kNorth, mk(false, true, 2, 0));
  r.decide(all_ok, moves);
  ASSERT_TRUE(moves[kEast].valid);
  (void)r.pop_for(kEast, moves[kEast]);
  r.decide(all_ok, moves);
  ASSERT_TRUE(moves[kEast].valid);
  (void)r.pop_for(kEast, moves[kEast]);
  EXPECT_TRUE(r.idle());
}

TEST(Wormhole, LanesRaiseSaturationAtConstantStorage) {
  // [Dally90]'s actual point, and the contrast to the paper's "1 lane"
  // citation: splitting the same 16 flits of buffering into 2 or 4 lanes
  // raises the saturation throughput substantially.
  auto accepted_at = [](unsigned lanes) {
    WormholeConfig cfg;
    cfg.topo = Topology{TopologyKind::kMesh2D, 8, 8};
    cfg.injection_rate = 0.9;
    cfg.message_flits = 20;
    cfg.buffer_flits = 16;
    cfg.lanes = lanes;
    cfg.seed = 11;
    WormholeNetwork net(cfg);
    net.run(25000, 5000);
    return net.accepted_throughput();
  };
  const double one = accepted_at(1);
  const double two = accepted_at(2);
  const double four = accepted_at(4);
  EXPECT_GT(two, one * 1.15);
  EXPECT_GT(four, one * 1.25);
}

TEST(Wormhole, DeliversEverythingAtLightLoad) {
  WormholeConfig cfg;
  cfg.topo = Topology{TopologyKind::kMesh2D, 4, 4};
  cfg.injection_rate = 0.05;
  cfg.message_flits = 20;
  cfg.buffer_flits = 16;
  cfg.seed = 3;
  WormholeNetwork net(cfg);
  net.run(20000, 1000);
  EXPECT_GT(net.messages_delivered(), 0u);
  // Light load: deliveries keep pace with injections (no growing backlog).
  EXPECT_LT(net.source_backlog_flits(), 200u);
  EXPECT_NEAR(net.accepted_throughput(), 0.05, 0.01);
}

TEST(Wormhole, LatencyGrowsWithLoad) {
  auto mean_latency_at = [](double rate) {
    WormholeConfig cfg;
    cfg.topo = Topology{TopologyKind::kMesh2D, 4, 4};
    cfg.injection_rate = rate;
    cfg.seed = 4;
    WormholeNetwork net(cfg);
    net.run(30000, 3000);
    return net.latency().mean();
  };
  const double lo = mean_latency_at(0.02);
  const double hi = mean_latency_at(0.15);
  EXPECT_GT(lo, 20.0);  // At least serialization: 20 flits.
  EXPECT_GT(hi, lo);
}

TEST(Wormhole, SaturatesWellBelowCapacity) {
  // The [Dally90, 1 lane] phenomenon (section 2.1): with 20-flit messages
  // and 16-flit buffers, accepted throughput plateaus far below link rate.
  WormholeConfig cfg;
  cfg.topo = Topology{TopologyKind::kMesh2D, 8, 8};
  cfg.injection_rate = 0.9;  // Offered far beyond saturation.
  cfg.message_flits = 20;
  cfg.buffer_flits = 16;
  cfg.seed = 5;
  WormholeNetwork net(cfg);
  net.run(30000, 5000);
  const double accepted = net.accepted_throughput();
  EXPECT_LT(accepted, 0.45);
  EXPECT_GT(accepted, 0.05);
  EXPECT_GT(net.source_backlog_flits(), 1000u);  // Clearly saturated.
}

TEST(Wormhole, NoDeadlockUnderSustainedOverload) {
  // XY dimension-order routing on a mesh is deadlock-free even single-lane:
  // deliveries must keep happening arbitrarily late into an overloaded run.
  WormholeConfig cfg;
  cfg.topo = Topology{TopologyKind::kMesh2D, 4, 4};
  cfg.injection_rate = 1.0;
  cfg.seed = 6;
  WormholeNetwork net(cfg);
  net.run(10000);
  const std::uint64_t early = net.messages_delivered();
  net.run(10000);
  EXPECT_GT(net.messages_delivered(), early + 50);
}

TEST(Wormhole, MessagesArriveIntact) {
  // Latency of every delivered message is at least hops + flits - 1; the
  // tail-accounting would fail (and credit checks abort) on flit loss.
  WormholeConfig cfg;
  cfg.topo = Topology{TopologyKind::kMesh2D, 4, 4};
  cfg.injection_rate = 0.08;
  cfg.message_flits = 10;
  cfg.seed = 7;
  WormholeNetwork net(cfg);
  net.run(20000, 100);
  ASSERT_GT(net.latency().samples(), 100u);
  EXPECT_GE(net.latency().min(), cfg.message_flits - 1);
  EXPECT_EQ(net.flits_delivered() % 1, 0u);
}

// ---------------------------------------------------------------------------
// CreditBridge: lossless switch-to-switch links (section 4.2's credit-based
// flow control, DESIGN.md extensions)
// ---------------------------------------------------------------------------

struct TwoSwitchChain {
  // Four saturated sources hammer switch A's output 0, which feeds switch B
  // through a credit bridge; B forwards to its own output 0. B's output can
  // be closed ("congested further downstream"), which is when backpressure
  // must propagate through the credits back into A's shared buffer.
  pmsb::SwitchConfig cfg_a, cfg_b;
  std::unique_ptr<pmsb::PipelinedSwitch> a, b;
  std::unique_ptr<CreditBridge> bridge;
  pmsb::Engine eng;
  std::unique_ptr<pmsb::HotspotDest> dests;
  std::vector<std::unique_ptr<pmsb::CellSource>> sources;
  std::unique_ptr<pmsb::CellSink> sink;
  std::uint64_t delivered = 0;
  bool b_output_open = true;
  pmsb::Subscription evb_sub;

  explicit TwoSwitchChain(unsigned credits, bool gated) {
    cfg_a.n_ports = 4;
    cfg_a.word_bits = 16;
    cfg_a.cell_words = 8;
    cfg_a.capacity_segments = 32;
    cfg_b = cfg_a;
    cfg_b.capacity_segments = credits;  // Tiny: only credits protect it.
    a = std::make_unique<pmsb::PipelinedSwitch>(cfg_a);
    b = std::make_unique<pmsb::PipelinedSwitch>(cfg_b);
    bridge = std::make_unique<CreditBridge>(&a->out_link(0), &b->in_link(0), credits);
    if (gated) {
      a->set_output_gate(
          [this](unsigned o) { return o != 0 || bridge->has_credit(); });
    }
    b->set_output_gate([this](unsigned) { return b_output_open; });
    pmsb::SwitchEvents evb;
    evb.on_read_grant = [this](unsigned, unsigned input, pmsb::Cycle, pmsb::Cycle,
                               pmsb::Cycle, bool) {
      if (input == 0) bridge->on_downstream_released();
    };
    evb_sub = b->events().subscribe(std::move(evb));

    dests = std::make_unique<pmsb::HotspotDest>(4, 0, 1.0);  // Everything to 0.
    pmsb::Rng seeder(321);
    for (unsigned i = 0; i < 4; ++i) {
      sources.push_back(std::make_unique<pmsb::CellSource>(
          i, &a->in_link(i), cfg_a.cell_format(), dests.get(),
          pmsb::ArrivalKind::kSaturated, 1.0, seeder.split()));
      eng.add(sources.back().get());
    }
    sink = std::make_unique<pmsb::CellSink>(0, &b->out_link(0), cfg_b.cell_format());
    sink->set_on_deliver([this](const pmsb::CellSink::Delivery&) { ++delivered; });
    eng.add(a.get());
    eng.add(bridge.get());
    eng.add(b.get());
    eng.add(sink.get());
  }

  /// Alternate congestion (B's output closed) with drain windows.
  void run_with_congestion(int rounds) {
    for (int r = 0; r < rounds; ++r) {
      b_output_open = false;
      eng.run(1000);
      b_output_open = true;
      eng.run(200);
    }
  }
};

TEST(CreditBridge, DownstreamIsLosslessUnderCongestion) {
  TwoSwitchChain chain(/*credits=*/4, /*gated=*/true);
  chain.run_with_congestion(20);
  // Switch A absorbs the backpressure in its shared buffer (and drops when
  // that fills -- its sources are not flow controlled); switch B, protected
  // by credits, never loses a cell and never exceeds its 4-cell pool.
  EXPECT_EQ(chain.b->stats().dropped(), 0u);
  EXPECT_GT(chain.delivered, 100u);
  EXPECT_GT(chain.a->stats().dropped(), 0u);
  EXPECT_LE(chain.b->buffer_peak(), 4u);
}

TEST(CreditBridge, WithoutGateTheFlowControlIsViolated) {
  TwoSwitchChain chain(/*credits=*/4, /*gated=*/false);
  // Ungated, the upstream switch keeps streaming while B's output is
  // closed; the 5th head either overruns B's pool or underflows the credit
  // counter -- the model refuses to simulate the violation silently.
  EXPECT_DEATH(chain.run_with_congestion(3), "credit");
}

TEST(CreditBridge, SustainsFullLinkRateWhenDownstreamKeepsUp) {
  // Credits large enough that flow control never binds while B drains:
  // end-to-end throughput equals one cell per L cycles on the link.
  TwoSwitchChain chain(/*credits=*/8, /*gated=*/true);
  chain.eng.run(40000);
  EXPECT_EQ(chain.b->stats().dropped(), 0u);
  EXPECT_NEAR(static_cast<double>(chain.delivered), 40000.0 / 8, 40);
}

TEST(CreditCounter, ConsumeRestore) {
  CreditCounter c(2);
  c.consume();
  c.consume();
  EXPECT_FALSE(c.available());
  c.restore(2);
  EXPECT_TRUE(c.available());
}

TEST(CreditCounterDeath, Overdraw) {
  CreditCounter c(1);
  c.consume();
  EXPECT_DEATH(c.consume(), "credit");
}

TEST(CreditCounterDeath, OverRestore) {
  CreditCounter c(2);
  EXPECT_DEATH(c.restore(2), "overflow");
}

}  // namespace
}  // namespace pmsb::net
