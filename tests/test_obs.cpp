// Tests for the observability layer: MetricsRegistry (src/obs/metrics.hpp),
// TraceBuffer (src/obs/trace_buffer.hpp), JsonWriter
// (src/obs/json_writer.hpp), the Tracer drain (src/sim/trace.hpp), engine
// sampling, and the warmup-windowed measurement of bench_util's run_uniform.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <deque>

#include "../bench/bench_util.hpp"
#include "core/event_hub.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace_buffer.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace pmsb {
namespace {

// ---- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistry, CounterCreateOrGetIsStable) {
  obs::MetricsRegistry m;
  obs::Counter* a = m.counter("switch.wave_initiations");
  ASSERT_NE(a, nullptr);
  obs::Counter* b = m.counter("switch.wave_initiations");
  EXPECT_EQ(a, b);  // Same name -> same counter object.
  a->inc();
  a->inc(3);
  EXPECT_EQ(b->value(), 4u);

  obs::Counter* other = m.counter("switch.drops");
  EXPECT_NE(other, a);
  EXPECT_EQ(other->value(), 0u);
  EXPECT_EQ(m.counters().size(), 2u);
}

TEST(MetricsRegistry, CounterRecordMaxIsHighWater) {
  obs::MetricsRegistry m;
  obs::Counter* c = m.counter("peak");
  c->record_max(7);
  c->record_max(3);  // Lower: ignored.
  EXPECT_EQ(c->value(), 7u);
  c->record_max(9);
  EXPECT_EQ(c->value(), 9u);
}

TEST(MetricsRegistry, DisabledRegistryIsInert) {
  obs::MetricsRegistry m(/*enabled=*/false);
  EXPECT_EQ(m.counter("x"), nullptr);
  EXPECT_EQ(m.histogram("h", 16), nullptr);
  int pulls = 0;
  m.add_gauge("g", [&] {
    ++pulls;
    return 1.0;
  });
  m.sample(0);
  m.sample(1);
  EXPECT_EQ(pulls, 0);  // Gauge was never registered.
  EXPECT_TRUE(m.counters().empty());
  EXPECT_TRUE(m.gauges().empty());
  EXPECT_EQ(m.find_counter("x"), nullptr);
}

TEST(MetricsRegistry, GaugeSamplingAccumulatesStats) {
  obs::MetricsRegistry m;
  double level = 2.0;
  m.add_gauge("occ", [&] { return level; });
  m.sample(10);
  level = 8.0;
  m.sample(20);
  level = 5.0;
  m.sample(30);

  const obs::GaugeStats* g = m.find_gauge("occ");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->samples, 3u);
  EXPECT_DOUBLE_EQ(g->last, 5.0);
  EXPECT_DOUBLE_EQ(g->min, 2.0);
  EXPECT_DOUBLE_EQ(g->max, 8.0);
  EXPECT_DOUBLE_EQ(g->mean(), 5.0);
  EXPECT_EQ(m.samples_taken(), 3u);
  EXPECT_EQ(m.last_sample_cycle(), 30);
}

TEST(MetricsRegistry, ResetClearsValuesButKeepsRegistrations) {
  obs::MetricsRegistry m;
  obs::Counter* c = m.counter("n");
  c->inc(42);
  m.add_gauge("g", [] { return 1.0; });
  Histogram* h = m.histogram("h", 8);
  ASSERT_NE(h, nullptr);
  h->add(3);
  m.sample(5);

  m.reset();
  EXPECT_EQ(c->value(), 0u);  // Cached pointer still valid, value zeroed.
  EXPECT_EQ(m.find_gauge("g")->samples, 0u);
  EXPECT_EQ(m.samples_taken(), 0u);
  c->inc();  // Still usable after reset.
  EXPECT_EQ(m.find_counter("n")->value(), 1u);
}

TEST(MetricsRegistryDeath, HistogramMaxValueMismatch) {
  // Re-requesting a histogram under the same name with a different max_value
  // used to silently hand back the existing histogram, so the second caller's
  // samples were clamped to the first caller's range. Now it aborts.
  obs::MetricsRegistry m;
  ASSERT_NE(m.histogram("lat", 64), nullptr);
  ASSERT_NE(m.histogram("lat", 64), nullptr);  // Same geometry: fine.
  EXPECT_DEATH(m.histogram("lat", 128), "different max_value");
}

TEST(MetricsRegistry, HdrHistogramCreateOrGet) {
  obs::MetricsRegistry m;
  HdrHistogram* a = m.hdr_histogram("flight.total");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(m.hdr_histogram("flight.total"), a);
  a->add(1000);
  EXPECT_EQ(m.find_hdr_histogram("flight.total")->samples(), 1u);
  EXPECT_EQ(m.find_hdr_histogram("absent"), nullptr);
  EXPECT_EQ(m.hdr_histograms().size(), 1u);

  obs::MetricsRegistry off(/*enabled=*/false);
  EXPECT_EQ(off.hdr_histogram("x"), nullptr);
}

TEST(MetricsRegistryDeath, HdrHistogramPrecisionMismatch) {
  obs::MetricsRegistry m;
  ASSERT_NE(m.hdr_histogram("h", 7), nullptr);
  EXPECT_DEATH(m.hdr_histogram("h", 9), "different precision");
}

TEST(MetricsRegistry, SampleHooksFireAfterGaugeUpdate) {
  obs::MetricsRegistry m;
  double level = 1.0;
  m.add_gauge("g", [&] { return level; });
  std::vector<double> seen;
  const std::uint64_t id = m.add_sample_hook(
      [&](Cycle) { seen.push_back(m.gauge_last(0)); });
  ASSERT_NE(id, 0u);
  m.sample(10);
  level = 4.0;
  m.sample(20);
  // Hooks run after the gauges are pulled, so they see this sample's values.
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0], 1.0);
  EXPECT_DOUBLE_EQ(seen[1], 4.0);

  m.remove_sample_hook(id);
  m.sample(30);
  EXPECT_EQ(seen.size(), 2u);  // Unhooked: no further callbacks.

  obs::MetricsRegistry off(/*enabled=*/false);
  EXPECT_EQ(off.add_sample_hook([](Cycle) {}), 0u);  // Disabled: inert id.
  off.remove_sample_hook(0);                         // Must be a safe no-op.
}

TEST(Engine, SamplesMetricsOnPeriod) {
  Engine eng;
  obs::MetricsRegistry m;
  eng.set_metrics(&m, /*period=*/4);
  for (int i = 0; i < 10; ++i) eng.step();
  // Samples at end of cycles 3 and 7 (now_ becomes 4 and 8).
  EXPECT_EQ(m.samples_taken(), 2u);
  eng.set_metrics(nullptr);
  for (int i = 0; i < 10; ++i) eng.step();
  EXPECT_EQ(m.samples_taken(), 2u);  // Detached: no further samples.
}

// ---- TimeSeriesSampler -----------------------------------------------------

TEST(TimeSeriesSampler, RecordsCounterDeltasAndGaugeValues) {
  obs::MetricsRegistry m;
  obs::Counter* c = m.counter("sw.cells");
  double occ = 3.0;
  m.add_gauge("buf.occ", [&] { return occ; });
  obs::TimeSeriesSampler ts(&m, /*capacity=*/8);

  c->inc(5);
  m.sample(100);
  c->inc(2);
  occ = 7.0;
  m.sample(200);

  ASSERT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.at(0).t, 100);
  EXPECT_EQ(ts.at(0).counter_deltas[0], 5u);  // Absolute at first snapshot.
  EXPECT_DOUBLE_EQ(ts.at(0).gauges[0], 3.0);
  EXPECT_EQ(ts.at(1).t, 200);
  EXPECT_EQ(ts.at(1).counter_deltas[0], 2u);  // Delta since the previous row.
  EXPECT_DOUBLE_EQ(ts.at(1).gauges[0], 7.0);

  const obs::TimeSeriesSampler::Series s = ts.series();
  ASSERT_EQ(s.counter_columns.size(), 1u);
  EXPECT_EQ(s.counter_columns[0], "sw.cells");
  EXPECT_EQ(s.gauge_columns[0], "buf.occ");
  EXPECT_EQ(s.rows.size(), 2u);
  EXPECT_EQ(s.dropped, 0u);
}

TEST(TimeSeriesSampler, RingWrapKeepsNewestRows) {
  obs::MetricsRegistry m;
  obs::Counter* c = m.counter("n");
  obs::TimeSeriesSampler ts(&m, /*capacity=*/3);
  for (Cycle t = 1; t <= 7; ++t) {
    c->inc();
    m.sample(t * 10);
  }
  EXPECT_EQ(ts.total(), 7u);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_EQ(ts.dropped(), 4u);
  // Oldest retained is snapshot #5; deltas survive the wrap (1 inc per row).
  EXPECT_EQ(ts.at(0).t, 50);
  EXPECT_EQ(ts.at(2).t, 70);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(ts.at(i).counter_deltas[0], 1u);
  EXPECT_EQ(ts.series().dropped, 4u);
}

TEST(TimeSeriesSampler, DisabledRegistryStaysEmpty) {
  obs::MetricsRegistry off(/*enabled=*/false);
  obs::TimeSeriesSampler ts(&off, 4);
  off.sample(10);
  EXPECT_EQ(ts.size(), 0u);
  obs::TimeSeriesSampler null_ts(nullptr, 4);  // Null registry: also inert.
  EXPECT_EQ(null_ts.size(), 0u);
}

TEST(TimeSeriesSampler, ColumnsRegisteredMidRunPadEarlierRows) {
  obs::MetricsRegistry m;
  obs::Counter* a = m.counter("x.a");
  obs::TimeSeriesSampler ts(&m, 8);
  a->inc(3);
  m.sample(10);
  obs::Counter* b = m.counter("x.b");  // Registered after the first row.
  b->inc(9);
  m.sample(20);
  const obs::TimeSeriesSampler::Series s = ts.series();
  ASSERT_EQ(s.counter_columns.size(), 2u);
  ASSERT_EQ(s.rows.size(), 2u);
  // Row 0 predates column b: padded with zero to full width.
  ASSERT_EQ(s.rows[0].counter_deltas.size(), 2u);
  EXPECT_EQ(s.rows[0].counter_deltas[1], 0u);
  EXPECT_EQ(s.rows[1].counter_deltas[1], 9u);
}

TEST(TimeSeriesSampler, ToPerfettoGroupsTracksByComponent) {
  obs::MetricsRegistry m;
  m.counter("switch.cells")->inc(4);
  m.add_gauge("buffer.occ", [] { return 2.5; });
  obs::TimeSeriesSampler ts(&m, 8);
  m.sample(100);

  obs::PerfettoTrace tr;
  ts.to_perfetto(tr);
  const std::string doc = tr.json();
  // One named track per component prefix, counter series suffixed /delta.
  EXPECT_NE(doc.find("\"switch\""), std::string::npos);
  EXPECT_NE(doc.find("\"buffer\""), std::string::npos);
  EXPECT_NE(doc.find("cells/delta"), std::string::npos);
  EXPECT_NE(doc.find("\"occ\":2.5"), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
}

// ---- PerfettoTrace ---------------------------------------------------------

TEST(PerfettoTrace, EmitsTrackMetadataAndEvents) {
  obs::PerfettoTrace tr;
  tr.set_track_name(3, "worker 3");
  tr.counter(100, 3, "load", {{"cells", 7.0}});
  tr.complete(100, 50, 3, "active", {{"rounds", 2.0}});
  tr.instant(200, 3, "skip");
  EXPECT_EQ(tr.event_count(), 4u);

  const std::string doc = tr.json();
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("\"worker 3\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"cells\":7"), std::string::npos);
}

TEST(PerfettoTrace, WriteProducesLoadableFile) {
  obs::PerfettoTrace tr;
  tr.set_track_name(1, "t");
  tr.counter(0, 1, "c", {{"v", 1.0}});
  const std::string path = testing::TempDir() + "pmsb_trace_test.json";
  tr.write(path);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char buf[4096] = {};
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  const std::string on_disk(buf, n);
  EXPECT_EQ(on_disk, tr.json());
}

// ---- FlightRecorder --------------------------------------------------------

TEST(FlightRecorder, DecomposesStagesFromSyntheticEvents) {
  EventHub hub;
  obs::FlightRecorder fr(/*n_ports=*/4, /*cell_words=*/8);
  fr.attach(hub);

  // Head at a0=10, write wave at t0=12, read wave at tr=20:
  // wait_grant=2, buffer=8, serialize=8, total=18.
  hub.head(1, 10, 2);
  hub.accept(1, 10, 12);
  hub.read_grant(2, 1, 20, 12, 10, false);

  EXPECT_EQ(fr.heads(), 1u);
  EXPECT_EQ(fr.completed(), 1u);
  EXPECT_EQ(fr.dropped(), 0u);
  EXPECT_EQ(fr.stage(obs::FlightStage::kWaitGrant).min(), 2u);
  EXPECT_EQ(fr.stage(obs::FlightStage::kBuffer).min(), 8u);
  EXPECT_EQ(fr.stage(obs::FlightStage::kSerialize).min(), 8u);
  EXPECT_EQ(fr.stage(obs::FlightStage::kTotal).min(), 18u);

  hub.drop(3, 11, DropReason::kNoAddress);
  EXPECT_EQ(fr.dropped(), 1u);
  // Drops never reach the histograms (no read grant).
  EXPECT_EQ(fr.stage(obs::FlightStage::kTotal).samples(), 1u);
}

TEST(FlightRecorder, WarmupFiltersByHeadArrival) {
  EventHub hub;
  obs::FlightRecorderConfig cfg;
  cfg.warmup = 100;
  obs::FlightRecorder fr(4, 8, cfg);
  fr.attach(hub);

  hub.head(0, 50, 1);                      // Pre-warmup head: ignored.
  hub.read_grant(1, 0, 60, 55, 50, false); // Its grant: ignored too (a0 < warmup).
  hub.drop(0, 99, DropReason::kNoSlot);    // Pre-warmup drop: ignored.
  hub.head(0, 100, 1);
  hub.read_grant(1, 0, 110, 105, 100, false);

  EXPECT_EQ(fr.heads(), 1u);
  EXPECT_EQ(fr.completed(), 1u);
  EXPECT_EQ(fr.dropped(), 0u);
  EXPECT_EQ(fr.stage(obs::FlightStage::kTotal).samples(), 1u);
}

TEST(FlightRecorder, PerPairHistogramsKeyOnInputOutput) {
  EventHub hub;
  obs::FlightRecorderConfig cfg;
  cfg.per_pair = true;
  obs::FlightRecorder fr(2, 4, cfg);
  fr.attach(hub);

  hub.read_grant(/*output=*/1, /*input=*/0, 20, 15, 10, false);  // total 14.
  hub.read_grant(/*output=*/0, /*input=*/1, 9, 6, 5, false);     // total 8.

  EXPECT_EQ(fr.pair_total(0, 1).samples(), 1u);
  EXPECT_EQ(fr.pair_total(0, 1).min(), 14u);
  EXPECT_EQ(fr.pair_total(1, 0).min(), 8u);
  EXPECT_EQ(fr.pair_total(0, 0).samples(), 0u);
}

TEST(FlightRecorder, MergeFoldsHistogramsAndCounts) {
  EventHub h1, h2;
  obs::FlightRecorder a(4, 8), b(4, 8);
  a.attach(h1);
  b.attach(h2);
  h1.head(0, 0, 1);
  h1.read_grant(1, 0, 10, 5, 0, false);  // total 18.
  h2.head(2, 0, 3);
  h2.read_grant(3, 2, 4, 2, 0, false);   // total 12.

  a.merge(b);
  EXPECT_EQ(a.heads(), 2u);
  EXPECT_EQ(a.completed(), 2u);
  EXPECT_EQ(a.stage(obs::FlightStage::kTotal).samples(), 2u);
  EXPECT_EQ(a.stage(obs::FlightStage::kTotal).min(), 12u);
  EXPECT_EQ(a.stage(obs::FlightStage::kTotal).max(), 18u);
}

TEST(FlightRecorder, RegistersLiveCounters) {
  obs::MetricsRegistry m;
  EventHub hub;
  obs::FlightRecorder fr(4, 8);
  fr.attach(hub);
  fr.register_metrics(m, "fl");
  hub.read_grant(1, 0, 10, 5, 0, false);
  hub.drop(0, 1, DropReason::kOutputLimit);
  EXPECT_EQ(m.find_counter("fl.completed")->value(), 1u);
  EXPECT_EQ(m.find_counter("fl.dropped")->value(), 1u);

  obs::MetricsRegistry off(/*enabled=*/false);
  obs::FlightRecorder fr2(4, 8);
  fr2.attach(hub);
  fr2.register_metrics(off);  // Null-pointer fast path: must not crash.
  hub.read_grant(1, 0, 10, 5, 0, false);
  EXPECT_EQ(fr2.completed(), 1u);
}

TEST(FlightRecorder, StagesAreAdditiveOnARealSwitch) {
  // End-to-end: attach to a real 4x4 PipelinedSwitch run and verify the
  // additive-decomposition contract on every delivered cell in aggregate:
  // identical sample counts per stage and exact sum equality.
  SwitchConfig cfg = SwitchConfig::for_ports(4);
  TrafficSpec spec;
  spec.load = 0.8;
  spec.seed = 91;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec,
                        /*scoreboard=*/false);
  obs::FlightRecorder fr(cfg.n_ports, cfg.cell_words);
  fr.attach(tb.dut().events());
  tb.run(4000);

  const std::uint64_t n = fr.stage(obs::FlightStage::kTotal).samples();
  ASSERT_GT(n, 100u);
  for (unsigned s = 0; s < obs::kFlightStageCount; ++s)
    EXPECT_EQ(fr.stage(static_cast<obs::FlightStage>(s)).samples(), n);
  EXPECT_EQ(fr.stage(obs::FlightStage::kTotal).sum(),
            fr.stage(obs::FlightStage::kWaitGrant).sum() +
                fr.stage(obs::FlightStage::kBuffer).sum() +
                fr.stage(obs::FlightStage::kSerialize).sum());
  EXPECT_EQ(fr.stage(obs::FlightStage::kSerialize).min(), cfg.cell_words);
  EXPECT_EQ(fr.stage(obs::FlightStage::kSerialize).max(), cfg.cell_words);
  EXPECT_EQ(fr.completed(), n);
}

// ---- TraceBuffer -----------------------------------------------------------

obs::TraceRecord rec(Cycle t, std::uint32_t arg = 0) {
  obs::TraceRecord r;
  r.t = t;
  r.event = obs::TraceEvent::kHead;
  r.arg = arg;
  return r;
}

TEST(TraceBuffer, RetainsEverythingBelowCapacity) {
  obs::TraceBuffer buf(8);
  for (Cycle t = 0; t < 5; ++t) buf.push(rec(t));
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.total(), 5u);
  EXPECT_EQ(buf.overwritten(), 0u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(buf.at(i).t, static_cast<Cycle>(i));
}

TEST(TraceBuffer, WrapsAroundKeepingNewest) {
  obs::TraceBuffer buf(4);
  for (Cycle t = 0; t < 10; ++t) buf.push(rec(t));
  EXPECT_EQ(buf.capacity(), 4u);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.total(), 10u);
  EXPECT_EQ(buf.overwritten(), 6u);
  // Oldest retained is record #6 (0-based), newest is #9.
  EXPECT_EQ(buf.at(0).t, 6);
  EXPECT_EQ(buf.at(3).t, 9);

  Cycle expect = 6;
  buf.for_each([&](const obs::TraceRecord& r) { EXPECT_EQ(r.t, expect++); });
  EXPECT_EQ(expect, 10);
}

TEST(TraceBuffer, ExactCapacityBoundaryDoesNotOverwrite) {
  // Pushing exactly `capacity` records must retain all of them with zero
  // overwrites; the very next push evicts exactly one.
  obs::TraceBuffer buf(4);
  for (Cycle t = 0; t < 4; ++t) buf.push(rec(t));
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.total(), 4u);
  EXPECT_EQ(buf.overwritten(), 0u);
  EXPECT_EQ(buf.at(0).t, 0);
  EXPECT_EQ(buf.at(3).t, 3);

  buf.push(rec(4));  // capacity + 1: oldest record (t=0) is gone.
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.overwritten(), 1u);
  EXPECT_EQ(buf.at(0).t, 1);
  EXPECT_EQ(buf.at(3).t, 4);
}

TEST(TraceBuffer, SingleSlotRingAlwaysHoldsNewest) {
  obs::TraceBuffer buf(1);
  for (Cycle t = 0; t < 3; ++t) buf.push(rec(t));
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.overwritten(), 2u);
  EXPECT_EQ(buf.at(0).t, 2);
}

TEST(TraceBuffer, ClearDropsRetainedRecords) {
  obs::TraceBuffer buf(4);
  for (Cycle t = 0; t < 3; ++t) buf.push(rec(t));
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  buf.push(rec(99));
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.at(0).t, 99);
}

TEST(TraceBuffer, LiveDrainSeesEveryPush) {
  obs::TraceBuffer buf(2);
  std::vector<Cycle> seen;
  buf.set_live_drain([&](const obs::TraceRecord& r) { seen.push_back(r.t); });
  for (Cycle t = 0; t < 5; ++t) buf.push(rec(t));
  // The drain sees all 5 even though the ring only retains 2.
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen.front(), 0);
  EXPECT_EQ(seen.back(), 4);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(TraceBuffer, FormatsEveryEventKind) {
  using obs::TraceEvent;
  for (TraceEvent e : {TraceEvent::kHead, TraceEvent::kWriteWave, TraceEvent::kReadGrant,
                       TraceEvent::kCutThrough, TraceEvent::kSnoop, TraceEvent::kDrop,
                       TraceEvent::kWaveInit, TraceEvent::kViolation}) {
    obs::TraceRecord r;
    r.event = e;
    EXPECT_FALSE(std::string(obs::to_string(e)).empty());
    EXPECT_FALSE(obs::format(r).empty());
  }
}

TEST(TraceBuffer, FormatsViolationWithInvariantAndDigest) {
  obs::TraceRecord r;
  r.event = obs::TraceEvent::kViolation;
  r.arg = 7;             // check::Invariant id.
  r.addr = 0xDEADBEEF;   // State digest of the violating cycle.
  const std::string line = obs::format(r);
  EXPECT_NE(line.find("VIOLATION"), std::string::npos);
  EXPECT_NE(line.find("invariant=7"), std::string::npos);
  EXPECT_NE(line.find("deadbeef"), std::string::npos);
}

// ---- Tracer as a drain (null-sink regression) ------------------------------

TEST(Tracer, NullSinkDoesNotCrash) {
  Tracer t(nullptr, /*enabled=*/true);
  t.event(3, "value %d", 7);  // Used to vfprintf(nullptr, ...) and crash.
  t.line("plain line");
  t.record(rec(4));
  obs::TraceBuffer buf(4);
  buf.push(rec(5));
  t.drain(buf);
  t.attach_live(buf);
  buf.push(rec(6));  // Live drain path with a null sink.
  SUCCEED();
}

TEST(Tracer, DisabledTracerEmitsNothingToLiveDrain) {
  obs::TraceBuffer buf(4);
  Tracer t(nullptr, /*enabled=*/false);
  t.attach_live(buf);
  buf.push(rec(1));  // Must not crash; disabled tracer just drops it.
  EXPECT_EQ(buf.total(), 1u);
}

// ---- JsonWriter ------------------------------------------------------------

TEST(JsonWriter, WritesNestedDocument) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("name", "e1");
  w.field("count", 3);
  w.key("vals").begin_array().value(1.5).value(true).null().end_array();
  w.end_object();
  ASSERT_TRUE(w.complete());
  EXPECT_EQ(w.str(), "{\"name\":\"e1\",\"count\":3,\"vals\":[1.5,true,null]}");
}

TEST(JsonWriter, EscapesStrings) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("k", "a\"b\\c\nd\te");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.begin_array();
  w.value(std::nan(""));
  w.value(std::numeric_limits<double>::infinity());
  w.value(2.0);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,2]");
}

TEST(JsonWriter, IncompleteUntilBalanced) {
  obs::JsonWriter w;
  w.begin_object();
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

// ---- BenchJson -------------------------------------------------------------

TEST(BenchJson, CarriesDefaultSchemaAndTables) {
  bench::BenchJson bj("unit");
  bj.metric("throughput", 0.75);  // Overwrites the seeded default.
  bj.metric("extra", 2.0);
  Table t({"a", "b"});
  t.add_row({"1", "x\"y"});
  bj.add_table("tbl", t);

  const std::string doc = bj.json();
  EXPECT_NE(doc.find("\"bench\":\"unit\""), std::string::npos);
  EXPECT_NE(doc.find("\"schema_version\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"throughput\":0.75"), std::string::npos);
  EXPECT_NE(doc.find("\"mean_latency\":0"), std::string::npos);  // Seeded default.
  EXPECT_NE(doc.find("\"occupancy\":0"), std::string::npos);
  // Schema v2: percentile keys are seeded so every artifact carries them.
  EXPECT_NE(doc.find("\"p50_latency\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"p90_latency\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"p99_latency\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"p999_latency\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"extra\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"title\":\"tbl\""), std::string::npos);
  EXPECT_NE(doc.find("\"headers\":[\"a\",\"b\"]"), std::string::npos);
  EXPECT_NE(doc.find("[\"1\",\"x\\\"y\"]"), std::string::npos);
  // Build provenance lives in the runtime object (stripped by determinism
  // diffs), never in the diffed surface.
  EXPECT_NE(doc.find("\"compiler\":"), std::string::npos);
  EXPECT_NE(doc.find("\"flags\":"), std::string::npos);
  EXPECT_NE(doc.find("\"git_sha\":"), std::string::npos);
  EXPECT_GT(doc.find("\"compiler\":"), doc.find("\"runtime\":"));
  // No timeseries was attached: the optional key is absent.
  EXPECT_EQ(doc.find("\"timeseries\""), std::string::npos);
}

TEST(BenchJson, PercentileHelpersFillSchemaAndPrefixedKeys) {
  bench::BenchJson bj("unit");
  HdrHistogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  bj.latency_percentiles(h);
  bj.percentile_metrics("stage buffer", h);
  const std::string doc = bj.json();
  EXPECT_NE(doc.find("\"p50_latency\":50"), std::string::npos);
  EXPECT_NE(doc.find("\"p99_latency\":99"), std::string::npos);
  EXPECT_NE(doc.find("\"p999_latency\":100"), std::string::npos);
  EXPECT_NE(doc.find("\"stage buffer p50\":50"), std::string::npos);
  EXPECT_NE(doc.find("\"stage buffer p999\":100"), std::string::npos);
}

TEST(BenchJson, TimeseriesSectionCarriesColumnsAndRows) {
  obs::MetricsRegistry m;
  m.counter("sw.cells")->inc(4);
  m.add_gauge("buf.occ", [] { return 1.5; });
  obs::TimeSeriesSampler ts(&m, 8);
  m.sample(100);

  bench::BenchJson bj("unit");
  bj.set_timeseries(ts.series());
  const std::string doc = bj.json();
  EXPECT_NE(doc.find("\"timeseries\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"counter_columns\":[\"sw.cells\"]"), std::string::npos);
  EXPECT_NE(doc.find("\"gauge_columns\":[\"buf.occ\"]"), std::string::npos);
  EXPECT_NE(doc.find("\"dropped\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"rows\":[[100,4,1.5]]"), std::string::npos);
}

// ---- run_uniform warmup accounting -----------------------------------------

// A model that deliberately delivers NOTHING during warmup and exactly n
// cells per slot afterwards: post-fix, measured throughput at load 1.0 must
// be exactly 1.0 (pre-fix it was diluted to 1 - warmup_fraction).
class StallUntilWarmup : public SlotModel {
 public:
  explicit StallUntilWarmup(unsigned n) : SlotModel(n) {}

  // Shadows SlotModel::set_warmup; run_uniform calls it on the concrete
  // type, so the model learns the warmup horizon it should stall through.
  void set_warmup(Cycle until) {
    stall_until_ = until;
    SlotModel::set_warmup(until);
  }

  void do_step(Cycle slot,
               const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) override {
    for (unsigned i = 0; i < n_; ++i) {
      if (arrivals[i]) {
        on_injected();
        q_.push_back(SlotCell{slot, i, arrivals[i]->dest});
      }
    }
    if (slot >= stall_until_) {
      for (unsigned k = 0; k < n_ && !q_.empty(); ++k) {
        on_delivered(slot, q_.front());
        q_.pop_front();
      }
    }
  }
  std::uint64_t resident() const override { return q_.size(); }
  const char* kind() const override { return "stall-until-warmup"; }

 private:
  Cycle stall_until_ = 0;
  std::deque<SlotCell> q_;
};

TEST(RunUniform, ThroughputIsNormalizedOverMeasuredWindowOnly) {
  const unsigned n = 4;
  const Cycle slots = 1000;
  const bench::SlotRun r = bench::run_uniform(
      [&] { return std::make_unique<StallUntilWarmup>(n); }, n, /*load=*/1.0, slots, /*seed=*/1,
      /*warmup_fraction=*/0.2);
  EXPECT_EQ(r.warmup_slots, 200);
  EXPECT_EQ(r.measured_slots, 800);
  // Load 1.0 injects n cells every slot; the model delivers exactly n per
  // measured slot. Counting only the post-warmup window, throughput is
  // exactly 1.0 (the pre-fix all-slots normalization would report 0.8).
  EXPECT_DOUBLE_EQ(r.throughput, 1.0);
  EXPECT_DOUBLE_EQ(r.loss, 0.0);
}

TEST(RunUniform, ZeroWarmupCountsEverything) {
  const unsigned n = 4;
  const bench::SlotRun r = bench::run_uniform(
      [&] { return std::make_unique<StallUntilWarmup>(n); }, n, 1.0, 500, 2,
      /*warmup_fraction=*/0.0);
  EXPECT_EQ(r.warmup_slots, 0);
  EXPECT_EQ(r.measured_slots, 500);
  EXPECT_DOUBLE_EQ(r.throughput, 1.0);  // No stall window at all.
}

}  // namespace
}  // namespace pmsb
