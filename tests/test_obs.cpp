// Tests for the observability layer: MetricsRegistry (src/obs/metrics.hpp),
// TraceBuffer (src/obs/trace_buffer.hpp), JsonWriter
// (src/obs/json_writer.hpp), the Tracer drain (src/sim/trace.hpp), engine
// sampling, and the warmup-windowed measurement of bench_util's run_uniform.

#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "../bench/bench_util.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_buffer.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace pmsb {
namespace {

// ---- MetricsRegistry -------------------------------------------------------

TEST(MetricsRegistry, CounterCreateOrGetIsStable) {
  obs::MetricsRegistry m;
  obs::Counter* a = m.counter("switch.wave_initiations");
  ASSERT_NE(a, nullptr);
  obs::Counter* b = m.counter("switch.wave_initiations");
  EXPECT_EQ(a, b);  // Same name -> same counter object.
  a->inc();
  a->inc(3);
  EXPECT_EQ(b->value(), 4u);

  obs::Counter* other = m.counter("switch.drops");
  EXPECT_NE(other, a);
  EXPECT_EQ(other->value(), 0u);
  EXPECT_EQ(m.counters().size(), 2u);
}

TEST(MetricsRegistry, CounterRecordMaxIsHighWater) {
  obs::MetricsRegistry m;
  obs::Counter* c = m.counter("peak");
  c->record_max(7);
  c->record_max(3);  // Lower: ignored.
  EXPECT_EQ(c->value(), 7u);
  c->record_max(9);
  EXPECT_EQ(c->value(), 9u);
}

TEST(MetricsRegistry, DisabledRegistryIsInert) {
  obs::MetricsRegistry m(/*enabled=*/false);
  EXPECT_EQ(m.counter("x"), nullptr);
  EXPECT_EQ(m.histogram("h", 16), nullptr);
  int pulls = 0;
  m.add_gauge("g", [&] {
    ++pulls;
    return 1.0;
  });
  m.sample(0);
  m.sample(1);
  EXPECT_EQ(pulls, 0);  // Gauge was never registered.
  EXPECT_TRUE(m.counters().empty());
  EXPECT_TRUE(m.gauges().empty());
  EXPECT_EQ(m.find_counter("x"), nullptr);
}

TEST(MetricsRegistry, GaugeSamplingAccumulatesStats) {
  obs::MetricsRegistry m;
  double level = 2.0;
  m.add_gauge("occ", [&] { return level; });
  m.sample(10);
  level = 8.0;
  m.sample(20);
  level = 5.0;
  m.sample(30);

  const obs::GaugeStats* g = m.find_gauge("occ");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->samples, 3u);
  EXPECT_DOUBLE_EQ(g->last, 5.0);
  EXPECT_DOUBLE_EQ(g->min, 2.0);
  EXPECT_DOUBLE_EQ(g->max, 8.0);
  EXPECT_DOUBLE_EQ(g->mean(), 5.0);
  EXPECT_EQ(m.samples_taken(), 3u);
  EXPECT_EQ(m.last_sample_cycle(), 30);
}

TEST(MetricsRegistry, ResetClearsValuesButKeepsRegistrations) {
  obs::MetricsRegistry m;
  obs::Counter* c = m.counter("n");
  c->inc(42);
  m.add_gauge("g", [] { return 1.0; });
  Histogram* h = m.histogram("h", 8);
  ASSERT_NE(h, nullptr);
  h->add(3);
  m.sample(5);

  m.reset();
  EXPECT_EQ(c->value(), 0u);  // Cached pointer still valid, value zeroed.
  EXPECT_EQ(m.find_gauge("g")->samples, 0u);
  EXPECT_EQ(m.samples_taken(), 0u);
  c->inc();  // Still usable after reset.
  EXPECT_EQ(m.find_counter("n")->value(), 1u);
}

TEST(Engine, SamplesMetricsOnPeriod) {
  Engine eng;
  obs::MetricsRegistry m;
  eng.set_metrics(&m, /*period=*/4);
  for (int i = 0; i < 10; ++i) eng.step();
  // Samples at end of cycles 3 and 7 (now_ becomes 4 and 8).
  EXPECT_EQ(m.samples_taken(), 2u);
  eng.set_metrics(nullptr);
  for (int i = 0; i < 10; ++i) eng.step();
  EXPECT_EQ(m.samples_taken(), 2u);  // Detached: no further samples.
}

// ---- TraceBuffer -----------------------------------------------------------

obs::TraceRecord rec(Cycle t, std::uint32_t arg = 0) {
  obs::TraceRecord r;
  r.t = t;
  r.event = obs::TraceEvent::kHead;
  r.arg = arg;
  return r;
}

TEST(TraceBuffer, RetainsEverythingBelowCapacity) {
  obs::TraceBuffer buf(8);
  for (Cycle t = 0; t < 5; ++t) buf.push(rec(t));
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.total(), 5u);
  EXPECT_EQ(buf.overwritten(), 0u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(buf.at(i).t, static_cast<Cycle>(i));
}

TEST(TraceBuffer, WrapsAroundKeepingNewest) {
  obs::TraceBuffer buf(4);
  for (Cycle t = 0; t < 10; ++t) buf.push(rec(t));
  EXPECT_EQ(buf.capacity(), 4u);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.total(), 10u);
  EXPECT_EQ(buf.overwritten(), 6u);
  // Oldest retained is record #6 (0-based), newest is #9.
  EXPECT_EQ(buf.at(0).t, 6);
  EXPECT_EQ(buf.at(3).t, 9);

  Cycle expect = 6;
  buf.for_each([&](const obs::TraceRecord& r) { EXPECT_EQ(r.t, expect++); });
  EXPECT_EQ(expect, 10);
}

TEST(TraceBuffer, ClearDropsRetainedRecords) {
  obs::TraceBuffer buf(4);
  for (Cycle t = 0; t < 3; ++t) buf.push(rec(t));
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  buf.push(rec(99));
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf.at(0).t, 99);
}

TEST(TraceBuffer, LiveDrainSeesEveryPush) {
  obs::TraceBuffer buf(2);
  std::vector<Cycle> seen;
  buf.set_live_drain([&](const obs::TraceRecord& r) { seen.push_back(r.t); });
  for (Cycle t = 0; t < 5; ++t) buf.push(rec(t));
  // The drain sees all 5 even though the ring only retains 2.
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_EQ(seen.front(), 0);
  EXPECT_EQ(seen.back(), 4);
  EXPECT_EQ(buf.size(), 2u);
}

TEST(TraceBuffer, FormatsEveryEventKind) {
  using obs::TraceEvent;
  for (TraceEvent e : {TraceEvent::kHead, TraceEvent::kWriteWave, TraceEvent::kReadGrant,
                       TraceEvent::kCutThrough, TraceEvent::kSnoop, TraceEvent::kDrop,
                       TraceEvent::kWaveInit}) {
    obs::TraceRecord r;
    r.event = e;
    EXPECT_FALSE(std::string(obs::to_string(e)).empty());
    EXPECT_FALSE(obs::format(r).empty());
  }
}

// ---- Tracer as a drain (null-sink regression) ------------------------------

TEST(Tracer, NullSinkDoesNotCrash) {
  Tracer t(nullptr, /*enabled=*/true);
  t.event(3, "value %d", 7);  // Used to vfprintf(nullptr, ...) and crash.
  t.line("plain line");
  t.record(rec(4));
  obs::TraceBuffer buf(4);
  buf.push(rec(5));
  t.drain(buf);
  t.attach_live(buf);
  buf.push(rec(6));  // Live drain path with a null sink.
  SUCCEED();
}

TEST(Tracer, DisabledTracerEmitsNothingToLiveDrain) {
  obs::TraceBuffer buf(4);
  Tracer t(nullptr, /*enabled=*/false);
  t.attach_live(buf);
  buf.push(rec(1));  // Must not crash; disabled tracer just drops it.
  EXPECT_EQ(buf.total(), 1u);
}

// ---- JsonWriter ------------------------------------------------------------

TEST(JsonWriter, WritesNestedDocument) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("name", "e1");
  w.field("count", 3);
  w.key("vals").begin_array().value(1.5).value(true).null().end_array();
  w.end_object();
  ASSERT_TRUE(w.complete());
  EXPECT_EQ(w.str(), "{\"name\":\"e1\",\"count\":3,\"vals\":[1.5,true,null]}");
}

TEST(JsonWriter, EscapesStrings) {
  obs::JsonWriter w;
  w.begin_object();
  w.field("k", "a\"b\\c\nd\te");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.begin_array();
  w.value(std::nan(""));
  w.value(std::numeric_limits<double>::infinity());
  w.value(2.0);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,null,2]");
}

TEST(JsonWriter, IncompleteUntilBalanced) {
  obs::JsonWriter w;
  w.begin_object();
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

// ---- BenchJson -------------------------------------------------------------

TEST(BenchJson, CarriesDefaultSchemaAndTables) {
  bench::BenchJson bj("unit");
  bj.metric("throughput", 0.75);  // Overwrites the seeded default.
  bj.metric("extra", 2.0);
  Table t({"a", "b"});
  t.add_row({"1", "x\"y"});
  bj.add_table("tbl", t);

  const std::string doc = bj.json();
  EXPECT_NE(doc.find("\"bench\":\"unit\""), std::string::npos);
  EXPECT_NE(doc.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"throughput\":0.75"), std::string::npos);
  EXPECT_NE(doc.find("\"mean_latency\":0"), std::string::npos);  // Seeded default.
  EXPECT_NE(doc.find("\"occupancy\":0"), std::string::npos);
  EXPECT_NE(doc.find("\"extra\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"title\":\"tbl\""), std::string::npos);
  EXPECT_NE(doc.find("\"headers\":[\"a\",\"b\"]"), std::string::npos);
  EXPECT_NE(doc.find("[\"1\",\"x\\\"y\"]"), std::string::npos);
}

// ---- run_uniform warmup accounting -----------------------------------------

// A model that deliberately delivers NOTHING during warmup and exactly n
// cells per slot afterwards: post-fix, measured throughput at load 1.0 must
// be exactly 1.0 (pre-fix it was diluted to 1 - warmup_fraction).
class StallUntilWarmup : public SlotModel {
 public:
  explicit StallUntilWarmup(unsigned n) : SlotModel(n) {}

  // Shadows SlotModel::set_warmup; run_uniform calls it on the concrete
  // type, so the model learns the warmup horizon it should stall through.
  void set_warmup(Cycle until) {
    stall_until_ = until;
    SlotModel::set_warmup(until);
  }

  void step(Cycle slot,
            const std::vector<std::optional<SlotTraffic::Arrival>>& arrivals) override {
    for (unsigned i = 0; i < n_; ++i) {
      if (arrivals[i]) {
        on_injected();
        q_.push_back(SlotCell{slot, i, arrivals[i]->dest});
      }
    }
    if (slot >= stall_until_) {
      for (unsigned k = 0; k < n_ && !q_.empty(); ++k) {
        on_delivered(slot, q_.front());
        q_.pop_front();
      }
    }
  }
  std::uint64_t resident() const override { return q_.size(); }
  const char* kind() const override { return "stall-until-warmup"; }

 private:
  Cycle stall_until_ = 0;
  std::deque<SlotCell> q_;
};

TEST(RunUniform, ThroughputIsNormalizedOverMeasuredWindowOnly) {
  const unsigned n = 4;
  const Cycle slots = 1000;
  const bench::SlotRun r = bench::run_uniform(
      [&] { return std::make_unique<StallUntilWarmup>(n); }, n, /*load=*/1.0, slots, /*seed=*/1,
      /*warmup_fraction=*/0.2);
  EXPECT_EQ(r.warmup_slots, 200);
  EXPECT_EQ(r.measured_slots, 800);
  // Load 1.0 injects n cells every slot; the model delivers exactly n per
  // measured slot. Counting only the post-warmup window, throughput is
  // exactly 1.0 (the pre-fix all-slots normalization would report 0.8).
  EXPECT_DOUBLE_EQ(r.throughput, 1.0);
  EXPECT_DOUBLE_EQ(r.loss, 0.0);
}

TEST(RunUniform, ZeroWarmupCountsEverything) {
  const unsigned n = 4;
  const bench::SlotRun r = bench::run_uniform(
      [&] { return std::make_unique<StallUntilWarmup>(n); }, n, 1.0, 500, 2,
      /*warmup_fraction=*/0.0);
  EXPECT_EQ(r.warmup_slots, 0);
  EXPECT_EQ(r.measured_slots, 500);
  EXPECT_DOUBLE_EQ(r.throughput, 1.0);  // No stall window at all.
}

}  // namespace
}  // namespace pmsb
