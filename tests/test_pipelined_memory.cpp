// Direct RTL-level tests of PipelinedMemory: wave propagation through the
// banks, write/read/snoop operations, and the exact cycle each bank is
// touched -- the figure 4/5 mechanics in isolation (no arbiter, no links).

#include <gtest/gtest.h>

#include "core/input_latches.hpp"
#include "core/output_row.hpp"
#include "core/pipelined_memory.hpp"
#include "sim/wire.hpp"

namespace pmsb {
namespace {

constexpr unsigned kStages = 4;
constexpr unsigned kWords = 8;
constexpr unsigned kWbits = 8;

struct Rig {
  PipelinedMemory mem{kStages, kWords, kWbits};
  InputLatches ir{2, kStages, kWbits};
  OutputRow orow{kStages, 2, kWbits};
  std::vector<WireLink> outs{2};
  Cycle t = 0;

  void cycle(const StageCtrl* initiate = nullptr) {
    if (initiate) mem.initiate(*initiate);
    mem.exec_cycle(ir, orow);
    orow.drive_links(outs);
    ir.tick(t);
    mem.tick();
    orow.tick();
    for (auto& l : outs) l.tick();
    ++t;
  }

  /// Preload IR[input][s] = base + s (committed).
  void preload(unsigned input, Word base) {
    for (unsigned s = 0; s < kStages; ++s) ir.latch(input, s, base + s, t);
    ir.tick(t);
  }
};

StageCtrl write_ctrl(std::uint32_t addr, unsigned in) {
  StageCtrl c;
  c.op = StageOp::kWrite;
  c.addr = addr;
  c.in_link = static_cast<std::uint16_t>(in);
  c.head = true;
  return c;
}

StageCtrl read_ctrl(std::uint32_t addr, unsigned out) {
  StageCtrl c;
  c.op = StageOp::kRead;
  c.addr = addr;
  c.out_link = static_cast<std::uint16_t>(out);
  c.head = true;
  return c;
}

TEST(PipelinedMemory, WriteWaveLandsOneBankPerCycle) {
  Rig rig;
  rig.preload(0, 0x10);
  const StageCtrl w = write_ctrl(3, 0);
  rig.cycle(&w);  // Stage 0 writes this cycle (commits at its end).
  EXPECT_EQ(rig.mem.bank(0).debug_peek(3), 0x10u);
  EXPECT_EQ(rig.mem.bank(1).debug_peek(3), 0u);  // Not yet.
  rig.cycle();
  EXPECT_EQ(rig.mem.bank(1).debug_peek(3), 0x11u);
  rig.cycle();
  rig.cycle();
  for (unsigned s = 0; s < kStages; ++s)
    EXPECT_EQ(rig.mem.bank(s).debug_peek(3), 0x10u + s) << "stage " << s;
  EXPECT_FALSE(rig.mem.busy());
}

TEST(PipelinedMemory, ReadWaveDrivesTheLinkWithOneCycleLag) {
  Rig rig;
  rig.preload(1, 0x20);
  const StageCtrl w = write_ctrl(5, 1);
  rig.cycle(&w);
  for (int k = 0; k < 3; ++k) rig.cycle();  // Finish the write wave.

  const StageCtrl r = read_ctrl(5, 1);
  rig.cycle(&r);  // Stage 0 read; OR[0] drives the wire for the next cycle,
                  // which rig.cycle() has already clocked in: outs.now() is
                  // the wire value one cycle after the stage-0 read.
  for (unsigned s = 0; s < kStages; ++s) {
    const Flit& f = rig.outs[1].now();
    ASSERT_TRUE(f.valid) << "word " << s;
    EXPECT_EQ(f.sop, s == 0);
    EXPECT_EQ(f.data, 0x20u + s);
    rig.cycle();
  }
  EXPECT_FALSE(rig.outs[1].now().valid);  // Exactly kStages words.
}

TEST(PipelinedMemory, SnoopForwardsWriteDataSameWave) {
  Rig rig;
  rig.preload(0, 0x30);
  StageCtrl c = write_ctrl(2, 0);
  c.op = StageOp::kWriteSnoop;
  c.out_link = 0;
  rig.cycle(&c);
  for (unsigned s = 0; s < kStages; ++s) {
    const Flit& f = rig.outs[0].now();
    ASSERT_TRUE(f.valid);
    EXPECT_EQ(f.sop, s == 0);
    EXPECT_EQ(f.data, 0x30u + s);
    // And the data also landed in the bank (it is a real write).
    EXPECT_EQ(rig.mem.bank(s).debug_peek(2), 0x30u + s);
    rig.cycle();
  }
}

TEST(PipelinedMemory, BackToBackWavesInterleaveWithoutConflicts) {
  // A write wave immediately followed by a read wave of another address:
  // each bank serves one wave per cycle (the single-port assert would abort
  // otherwise), one cycle apart.
  Rig rig;
  rig.preload(0, 0x40);
  // Seed address 7 with known data first.
  const StageCtrl w7 = write_ctrl(7, 0);
  rig.cycle(&w7);
  for (int k = 0; k < 3; ++k) rig.cycle();

  rig.preload(0, 0x50);
  const StageCtrl w1 = write_ctrl(1, 0);
  rig.cycle(&w1);
  const StageCtrl r7 = read_ctrl(7, 1);
  rig.cycle(&r7);  // One cycle behind the write wave: no bank conflicts.
  for (int k = 0; k < 5; ++k) rig.cycle();
  for (unsigned s = 0; s < kStages; ++s) {
    EXPECT_EQ(rig.mem.bank(s).debug_peek(1), 0x50u + s);
    EXPECT_EQ(rig.mem.bank(s).debug_peek(7), 0x40u + s);
  }
}

TEST(PipelinedMemoryDeath, TwoInitiationsOneCycle) {
  Rig rig;
  const StageCtrl a = write_ctrl(0, 0);
  const StageCtrl b = read_ctrl(1, 0);
  rig.mem.initiate(a);
  EXPECT_DEATH(rig.mem.initiate(b), "single-ported");
}

TEST(PipelinedMemory, BusyWhileAnyWaveInFlight) {
  Rig rig;
  rig.preload(0, 0);
  const StageCtrl w = write_ctrl(0, 0);
  rig.cycle(&w);
  EXPECT_TRUE(rig.mem.busy());
  rig.cycle();
  rig.cycle();
  EXPECT_TRUE(rig.mem.busy());  // Still in the last stage's register.
  rig.cycle();
  EXPECT_FALSE(rig.mem.busy());
}

}  // namespace
}  // namespace pmsb
