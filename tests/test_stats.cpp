// Tests of the statistics substrate: histograms, running moments, latency
// trackers, flow accounting, table rendering.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "stats/hdr_histogram.hpp"
#include "stats/histogram.hpp"
#include "stats/stats.hpp"
#include "stats/table.hpp"

namespace pmsb {
namespace {

TEST(Histogram, MeanAndCount) {
  Histogram h(64);
  h.add(2);
  h.add(4);
  h.add(6);
  EXPECT_EQ(h.samples(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, Percentiles) {
  Histogram h(128);
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.percentile(0.0), 1u);
  EXPECT_EQ(h.percentile(0.5), 50u);
  EXPECT_EQ(h.percentile(0.99), 99u);
  EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(Histogram, MinMax) {
  Histogram h(64);
  h.add(9);
  h.add(3);
  h.add(42);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 42u);
}

TEST(Histogram, OverflowClampsBucketButNotMean) {
  Histogram h(10);
  h.add(1000);
  EXPECT_EQ(h.max(), 10u);           // Clamped bucket.
  EXPECT_DOUBLE_EQ(h.mean(), 1000);  // Exact sum retained.
}

TEST(Histogram, MergeAndClear) {
  Histogram a(16), b(16);
  a.add(1);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.samples(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  a.clear();
  EXPECT_EQ(a.samples(), 0u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(16);
  h.add(5, 10);
  EXPECT_EQ(h.samples(), 10u);
  EXPECT_EQ(h.percentile(0.5), 5u);
}

// ---- HdrHistogram ----------------------------------------------------------

TEST(HdrHistogram, ExactBelowSubBucketThreshold) {
  HdrHistogram h(7);  // Values < 128 are one bucket each.
  for (std::uint64_t v = 0; v < 128; ++v) h.add(v);
  EXPECT_EQ(h.samples(), 128u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 127u);
  for (std::uint64_t v = 0; v < 128; ++v) {
    EXPECT_EQ(h.index_of(v), v);
    EXPECT_EQ(h.bucket_low(v), v);
    EXPECT_EQ(h.bucket_high(v), v);
  }
  // With one sample per value, every percentile is exact.
  EXPECT_EQ(h.percentile(0.5), 63u);
  EXPECT_EQ(h.percentile(1.0), 127u);
}

TEST(HdrHistogram, BucketsAreContiguousAcrossOctaves) {
  const HdrHistogram h(4);  // Small precision: quick full sweep.
  // Every bucket's range starts where the previous one ended.
  for (std::size_t i = 0; i + 1 < h.bucket_count(); ++i) {
    ASSERT_LE(h.bucket_low(i), h.bucket_high(i)) << "bucket " << i;
    ASSERT_EQ(h.bucket_high(i) + 1, h.bucket_low(i + 1)) << "bucket " << i;
  }
  // index_of inverts the bucket bounds over a wide sample of magnitudes.
  for (std::uint64_t v = 1; v < (1ull << 62); v = v * 3 + 1) {
    const std::size_t i = h.index_of(v);
    EXPECT_GE(v, h.bucket_low(i));
    EXPECT_LE(v, h.bucket_high(i));
  }
  EXPECT_EQ(h.index_of(~0ull), h.bucket_count() - 1);  // Top of the range fits.
}

TEST(HdrHistogram, SumMinMaxMeanAreExact) {
  HdrHistogram h;
  h.add(1000000);  // Bucketed -- but the sum must stay exact.
  h.add(3, 2);     // Weighted add.
  EXPECT_EQ(h.samples(), 3u);
  EXPECT_EQ(h.sum(), 1000006u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 1000000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1000006.0 / 3.0);
}

TEST(HdrHistogram, PercentilesTrackSortedReferenceWithinRelativeError) {
  HdrHistogram h(7);
  std::vector<std::uint64_t> ref;
  std::mt19937_64 rng(7);  // Heavy-tailed sample: latencies over 5 decades.
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t v = 1 + (rng() % (1ull << (4 + i % 16)));
    ref.push_back(v);
    h.add(v);
  }
  std::sort(ref.begin(), ref.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(ref.size()))) - 1;
    const double exact = static_cast<double>(ref[idx]);
    const double got = static_cast<double>(h.percentile(q));
    // The reported value is the containing bucket's upper bound: never
    // below the exact answer, and above by at most the relative error.
    EXPECT_GE(got, exact);
    EXPECT_LE(got, exact * (1.0 + h.relative_error()) + 1.0) << "q=" << q;
  }
  EXPECT_EQ(h.percentile(0.0), h.min());
  EXPECT_EQ(h.percentile(1.0), h.max());
}

TEST(HdrHistogram, MergeMatchesCombinedRecording) {
  HdrHistogram a(7), b(7), both(7);
  std::mt19937_64 rng(11);
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t v = rng() % 100000;
    ((i % 2) ? a : b).add(v);
    both.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.samples(), both.samples());
  EXPECT_EQ(a.sum(), both.sum());
  EXPECT_EQ(a.min(), both.min());
  EXPECT_EQ(a.max(), both.max());
  for (const double q : {0.5, 0.9, 0.99, 0.999})
    EXPECT_EQ(a.percentile(q), both.percentile(q)) << "q=" << q;
}

TEST(HdrHistogram, ClearEmptiesEverything) {
  HdrHistogram h;
  h.add(42);
  h.clear();
  EXPECT_EQ(h.samples(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.percentile(0.99), 0u);
  h.add(7);  // Usable after clear.
  EXPECT_EQ(h.p50(), 7u);
}

TEST(HdrHistogramDeath, RejectsBadPrecisionAndMixedMerge) {
  EXPECT_DEATH(HdrHistogram(0), "precision");
  EXPECT_DEATH(HdrHistogram(21), "precision");
  HdrHistogram a(7), b(8);
  EXPECT_DEATH(a.merge(b), "precision");
}

TEST(LatencyStats, HdrBackedPercentilesAndMerge) {
  LatencyStats x(0), y(0);
  for (Cycle v = 1; v <= 900; ++v) x.record(0, v);
  for (Cycle v = 901; v <= 1000; ++v) y.record(0, v);
  x.merge(y);
  EXPECT_EQ(x.samples(), 1000u);
  EXPECT_EQ(x.histogram().samples(), 1000u);
  const double err = x.histogram().relative_error();
  EXPECT_NEAR(static_cast<double>(x.p50()), 500.0, 500.0 * err + 1.0);
  EXPECT_NEAR(static_cast<double>(x.p90()), 900.0, 900.0 * err + 1.0);
  EXPECT_NEAR(static_cast<double>(x.p99()), 990.0, 990.0 * err + 1.0);
  EXPECT_NEAR(static_cast<double>(x.p999()), 999.0, 999.0 * err + 1.0);
  EXPECT_EQ(x.max(), 1000u);
}

TEST(RunningStats, MeanVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571, 0.01);  // Sample variance.
  EXPECT_GT(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(LatencyStats, WarmupFiltersEarlyInjections) {
  LatencyStats ls(100);
  ls.record(50, 60);    // Injected during warmup: ignored.
  ls.record(150, 170);  // Counted.
  EXPECT_EQ(ls.samples(), 1u);
  EXPECT_DOUBLE_EQ(ls.mean(), 20.0);
}

TEST(LatencyStatsDeath, NegativeLatency) {
  LatencyStats ls(0);
  EXPECT_DEATH(ls.record(10, 5), "negative");
}

TEST(FlowCounts, LossRatioAndOutstanding) {
  FlowCounts c;
  c.injected = 1000;
  c.delivered = 900;
  c.dropped = 50;
  EXPECT_DOUBLE_EQ(c.loss_ratio(), 0.05);
  EXPECT_EQ(c.outstanding(), 50u);
  EXPECT_DOUBLE_EQ(FlowCounts{}.loss_ratio(), 0.0);
}

TEST(Throughput, Normalized) {
  EXPECT_DOUBLE_EQ(normalized_throughput(800, 8, 100), 1.0);
  EXPECT_DOUBLE_EQ(normalized_throughput(400, 8, 100), 0.5);
  EXPECT_DOUBLE_EQ(normalized_throughput(1, 0, 100), 0.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"load", "throughput"});
  t.add_row({"0.5", "0.499"});
  t.add_row({"1.0", "0.586"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cell(1, 1), "0.586");
  // Smoke-render to a temp file and check content survived.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  t.print(f);
  t.print_csv(f);
  std::rewind(f);
  std::string all(1 << 12, '\0');
  const std::size_t got = std::fread(all.data(), 1, all.size(), f);
  all.resize(got);
  EXPECT_NE(all.find("0.586"), std::string::npos);
  EXPECT_NE(all.find("load,throughput"), std::string::npos);
  std::fclose(f);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(-42), "-42");
  EXPECT_EQ(Table::sci(0.00123, 1), "1.2e-03");
}

TEST(TableDeath, RowWidthMismatch) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only one"}), "width");
}

}  // namespace
}  // namespace pmsb
