// Tests of the statistics substrate: histograms, running moments, latency
// trackers, flow accounting, table rendering.

#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.hpp"
#include "stats/stats.hpp"
#include "stats/table.hpp"

namespace pmsb {
namespace {

TEST(Histogram, MeanAndCount) {
  Histogram h(64);
  h.add(2);
  h.add(4);
  h.add(6);
  EXPECT_EQ(h.samples(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
}

TEST(Histogram, Percentiles) {
  Histogram h(128);
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.percentile(0.0), 1u);
  EXPECT_EQ(h.percentile(0.5), 50u);
  EXPECT_EQ(h.percentile(0.99), 99u);
  EXPECT_EQ(h.percentile(1.0), 100u);
}

TEST(Histogram, MinMax) {
  Histogram h(64);
  h.add(9);
  h.add(3);
  h.add(42);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 42u);
}

TEST(Histogram, OverflowClampsBucketButNotMean) {
  Histogram h(10);
  h.add(1000);
  EXPECT_EQ(h.max(), 10u);           // Clamped bucket.
  EXPECT_DOUBLE_EQ(h.mean(), 1000);  // Exact sum retained.
}

TEST(Histogram, MergeAndClear) {
  Histogram a(16), b(16);
  a.add(1);
  b.add(3);
  a.merge(b);
  EXPECT_EQ(a.samples(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  a.clear();
  EXPECT_EQ(a.samples(), 0u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(16);
  h.add(5, 10);
  EXPECT_EQ(h.samples(), 10u);
  EXPECT_EQ(h.percentile(0.5), 5u);
}

TEST(RunningStats, MeanVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571, 0.01);  // Sample variance.
  EXPECT_GT(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(LatencyStats, WarmupFiltersEarlyInjections) {
  LatencyStats ls(100);
  ls.record(50, 60);    // Injected during warmup: ignored.
  ls.record(150, 170);  // Counted.
  EXPECT_EQ(ls.samples(), 1u);
  EXPECT_DOUBLE_EQ(ls.mean(), 20.0);
}

TEST(LatencyStatsDeath, NegativeLatency) {
  LatencyStats ls(0);
  EXPECT_DEATH(ls.record(10, 5), "negative");
}

TEST(FlowCounts, LossRatioAndOutstanding) {
  FlowCounts c;
  c.injected = 1000;
  c.delivered = 900;
  c.dropped = 50;
  EXPECT_DOUBLE_EQ(c.loss_ratio(), 0.05);
  EXPECT_EQ(c.outstanding(), 50u);
  EXPECT_DOUBLE_EQ(FlowCounts{}.loss_ratio(), 0.0);
}

TEST(Throughput, Normalized) {
  EXPECT_DOUBLE_EQ(normalized_throughput(800, 8, 100), 1.0);
  EXPECT_DOUBLE_EQ(normalized_throughput(400, 8, 100), 0.5);
  EXPECT_DOUBLE_EQ(normalized_throughput(1, 0, 100), 0.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"load", "throughput"});
  t.add_row({"0.5", "0.499"});
  t.add_row({"1.0", "0.586"});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cell(1, 1), "0.586");
  // Smoke-render to a temp file and check content survived.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  t.print(f);
  t.print_csv(f);
  std::rewind(f);
  std::string all(1 << 12, '\0');
  const std::size_t got = std::fread(all.data(), 1, all.size(), f);
  all.resize(got);
  EXPECT_NE(all.find("0.586"), std::string::npos);
  EXPECT_NE(all.find("load,throughput"), std::string::npos);
  std::fclose(f);
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(-42), "-42");
  EXPECT_EQ(Table::sci(0.00123, 1), "1.2e-03");
}

TEST(TableDeath, RowWidthMismatch) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only one"}), "width");
}

}  // namespace
}  // namespace pmsb
