// Randomized end-to-end verification of the pipelined switch: a parameter
// grid over switch size, load, arrival process, and destination pattern,
// each run checked by the scoreboard (payload integrity, per-pair FIFO
// order, conservation) and drained to empty.

#include <gtest/gtest.h>

#include "core/switch.hpp"
#include "core/testbench.hpp"

namespace pmsb {
namespace {

struct RandomCase {
  unsigned n;
  unsigned word_bits;
  unsigned capacity_cells;
  double load;
  ArrivalKind arrivals;
  PatternKind pattern;
  std::uint64_t seed;
};

void PrintTo(const RandomCase& c, std::ostream* os) {
  *os << "n" << c.n << "_w" << c.word_bits << "_cap" << c.capacity_cells << "_load"
      << static_cast<int>(c.load * 100) << "_arr" << static_cast<int>(c.arrivals) << "_pat"
      << static_cast<int>(c.pattern) << "_seed" << c.seed;
}

class SwitchRandom : public ::testing::TestWithParam<RandomCase> {};

TEST_P(SwitchRandom, ScoreboardCleanAndDrains) {
  const RandomCase& rc = GetParam();
  SwitchConfig cfg;
  cfg.n_ports = rc.n;
  cfg.word_bits = rc.word_bits;
  cfg.cell_words = 2 * rc.n;
  cfg.capacity_segments = rc.capacity_cells;
  TrafficSpec spec;
  spec.arrivals = rc.arrivals;
  spec.pattern = rc.pattern;
  spec.load = rc.load;
  spec.seed = rc.seed;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);

  tb.run(15000);
  ASSERT_TRUE(tb.drain(500000));

  const Scoreboard& sb = tb.scoreboard();
  EXPECT_TRUE(sb.ok()) << sb.errors().front();
  EXPECT_TRUE(sb.fully_drained());
  const auto& st = tb.dut().stats();
  EXPECT_EQ(sb.injected(), sb.delivered() + sb.dropped());
  EXPECT_EQ(tb.injected(), sb.injected());
  EXPECT_EQ(tb.delivered(), sb.delivered());
  // Single-segment cells can only be dropped for lack of buffer space, never
  // for lack of a stage-0 slot (the window guarantee, DESIGN.md inv. 2).
  EXPECT_EQ(st.dropped_no_slot, 0u);
  if (st.dropped() == 0) {
    EXPECT_EQ(tb.injected(), tb.delivered());
  }
}

std::vector<RandomCase> make_grid() {
  std::vector<RandomCase> cases;
  std::uint64_t seed = 1000;
  for (unsigned n : {2u, 4u, 8u}) {
    for (double load : {0.3, 0.7, 1.0}) {
      for (ArrivalKind ak : {ArrivalKind::kGeometric, ArrivalKind::kSlotted}) {
        for (PatternKind pk : {PatternKind::kUniform, PatternKind::kHotspot}) {
          cases.push_back(RandomCase{n, 16, 64, load, ak, pk, seed++});
        }
      }
    }
  }
  // A few stressed corners: tiny buffers, narrow words, permutations.
  cases.push_back(RandomCase{4, 8, 4, 1.0, ArrivalKind::kSaturated, PatternKind::kUniform, 7});
  cases.push_back(RandomCase{4, 8, 4, 1.0, ArrivalKind::kSaturated, PatternKind::kHotspot, 8});
  cases.push_back(
      RandomCase{8, 16, 256, 1.0, ArrivalKind::kSaturated, PatternKind::kPermutation, 9});
  cases.push_back(RandomCase{2, 4, 8, 0.9, ArrivalKind::kSlotted, PatternKind::kUniform, 10});
  cases.push_back(RandomCase{3, 16, 27, 0.8, ArrivalKind::kGeometric, PatternKind::kUniform, 11});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, SwitchRandom, ::testing::ValuesIn(make_grid()));

// Bursty word-level traffic through the same scoreboard.
class SwitchBursty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SwitchBursty, BurstTrainsSurviveVerification) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 16;
  cfg.cell_words = 8;
  cfg.capacity_segments = 32;
  TrafficSpec spec;
  spec.load = 0.8;
  spec.bursty = true;
  spec.mean_burst_cells = 6.0;
  spec.seed = GetParam();
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(20000);
  ASSERT_TRUE(tb.drain(500000));
  EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
  EXPECT_TRUE(tb.scoreboard().fully_drained());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwitchBursty, ::testing::Values(1, 2, 3, 4, 5));

// The figure-7a address path must behave identically to the default 7b.
TEST(SwitchAddrPath, PerStageDecodersEquivalent) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 16;
  cfg.cell_words = 8;
  cfg.capacity_segments = 32;

  auto run = [&](AddrPathMode mode) {
    PipelinedSwitch sw(cfg, mode);
    Engine eng;
    UniformDest dests(4);
    std::vector<std::unique_ptr<CellSource>> sources;
    std::vector<std::unique_ptr<CellSink>> sinks;
    std::vector<std::vector<Word>> delivered;
    Rng seeder(77);
    for (unsigned i = 0; i < 4; ++i) {
      sources.push_back(std::make_unique<CellSource>(i, &sw.in_link(i), cfg.cell_format(),
                                                     &dests, ArrivalKind::kGeometric, 0.8,
                                                     seeder.split()));
      eng.add(sources.back().get());
    }
    eng.add(&sw);
    for (unsigned o = 0; o < 4; ++o) {
      sinks.push_back(std::make_unique<CellSink>(o, &sw.out_link(o), cfg.cell_format()));
      sinks.back()->set_on_deliver(
          [&delivered](const CellSink::Delivery& d) { delivered.push_back(d.words); });
      eng.add(sinks.back().get());
    }
    eng.run(10000);
    return delivered;
  };
  // Identical seeds => identical traffic => identical delivered sequences.
  EXPECT_EQ(run(AddrPathMode::kDecodedPipeline), run(AddrPathMode::kPerStageDecoders));
}

}  // namespace
}  // namespace pmsb
