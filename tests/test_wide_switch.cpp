// Tests of the wide-memory baseline (figure 3): functional correctness via
// the scoreboard, the double-buffering requirement, and the restricted
// cut-through opportunity that distinguishes it from the pipelined memory.

#include <gtest/gtest.h>

#include "arch/wide/wide_switch.hpp"
#include "core/testbench.hpp"

namespace pmsb {
namespace {

using WideTestbench = Testbench<WideMemorySwitch, SwitchConfig>;

SwitchConfig wide_cfg(unsigned n = 4, unsigned cap_cells = 32) {
  SwitchConfig cfg;
  cfg.n_ports = n;
  cfg.word_bits = 16;
  cfg.cell_words = 2 * n;
  cfg.capacity_segments = cap_cells;  // One segment per cell for wide.
  return cfg;
}

TEST(WideSwitch, RejectsMultiSegmentCells) {
  SwitchConfig cfg = wide_cfg();
  cfg.cell_words = 16;  // 2 segments at n=4.
  cfg.capacity_segments = 32;
  EXPECT_THROW(WideMemorySwitch{cfg}, std::invalid_argument);
}

TEST(WideSwitch, BypassCutThroughLatencyIsTwo) {
  const SwitchConfig cfg = wide_cfg();
  WideMemorySwitch sw(cfg);
  Engine eng;
  eng.add(&sw);
  const CellFormat fmt = cfg.cell_format();
  const Cycle a0 = eng.now() + 1;
  std::vector<Flit> out_trace;
  for (unsigned k = 0; k < fmt.length_words + 4; ++k) {
    if (k < fmt.length_words)
      sw.in_link(0).drive_next(Flit{true, k == 0, cell_word(9, 1, k, fmt)});
    eng.step();
    out_trace.push_back(sw.out_link(1).now());
  }
  const Flit& head = out_trace[a0 + 1];
  EXPECT_TRUE(head.valid && head.sop);
  EXPECT_EQ(head.data, cell_word(9, 1, 0, fmt));
  EXPECT_EQ(sw.bypass_cells(), 1u);
}

TEST(WideSwitch, StoreAndForwardWhenOutputBusy) {
  // Two cells to one output: the second cannot take the bypass (the output
  // is owned), so it must be fully assembled, stored, and read back -- the
  // figure 3 limitation ("the paths provided do not suffice" mid-cell).
  const SwitchConfig cfg = wide_cfg();
  WideMemorySwitch sw(cfg);
  Engine eng;
  eng.add(&sw);
  const CellFormat fmt = cfg.cell_format();
  for (unsigned k = 0; k < fmt.length_words; ++k) {
    sw.in_link(0).drive_next(Flit{true, k == 0, cell_word(1, 1, k, fmt)});
    sw.in_link(2).drive_next(Flit{true, k == 0, cell_word(2, 1, k, fmt)});
    eng.step();
  }
  for (int k = 0; k < 40; ++k) eng.step();
  EXPECT_EQ(sw.stats().read_grants, 2u);
  EXPECT_EQ(sw.bypass_cells(), 1u);            // Only one took the bypass.
  EXPECT_EQ(sw.stats().write_initiations, 1u); // The other went to memory.
  EXPECT_TRUE(sw.drained());
}

struct WideCase {
  unsigned n;
  double load;
  unsigned cap;
  ArrivalKind arrivals;
  PatternKind pattern;
  std::uint64_t seed;
};

void PrintTo(const WideCase& c, std::ostream* os) {
  *os << "n" << c.n << "_load" << static_cast<int>(c.load * 100) << "_cap" << c.cap << "_arr"
      << static_cast<int>(c.arrivals) << "_pat" << static_cast<int>(c.pattern) << "_seed"
      << c.seed;
}

class WideRandom : public ::testing::TestWithParam<WideCase> {};

TEST_P(WideRandom, ScoreboardCleanAndDrains) {
  const WideCase& wc = GetParam();
  const SwitchConfig cfg = wide_cfg(wc.n, wc.cap);
  TrafficSpec spec;
  spec.arrivals = wc.arrivals;
  spec.pattern = wc.pattern;
  spec.load = wc.load;
  spec.seed = wc.seed;
  WideTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(15000);
  ASSERT_TRUE(tb.drain(500000));
  EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
  EXPECT_TRUE(tb.scoreboard().fully_drained());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WideRandom,
    ::testing::Values(
        WideCase{2, 0.5, 16, ArrivalKind::kGeometric, PatternKind::kUniform, 81},
        WideCase{4, 0.8, 32, ArrivalKind::kGeometric, PatternKind::kUniform, 82},
        WideCase{4, 1.0, 32, ArrivalKind::kSaturated, PatternKind::kUniform, 83},
        WideCase{4, 1.0, 8, ArrivalKind::kSaturated, PatternKind::kHotspot, 84},
        WideCase{8, 0.9, 64, ArrivalKind::kSlotted, PatternKind::kUniform, 85},
        WideCase{8, 1.0, 128, ArrivalKind::kSaturated, PatternKind::kPermutation, 86}));

TEST(WideSwitch, FullLoadPermutationSustainsLineRate) {
  // With output double-buffering the wide organization also reaches full
  // line rate on contention-free traffic -- the paper's point is cost, not
  // peak throughput.
  const SwitchConfig cfg = wide_cfg(4, 32);
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.pattern = PatternKind::kPermutation;
  spec.load = 1.0;
  spec.seed = 90;
  WideTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(8000);
  EXPECT_EQ(tb.dut().stats().dropped(), 0u);
  EXPECT_GE(tb.delivered(), 4u * (8000u / 8 - 6));
}

TEST(WideSwitch, HigherLatencyThanPipelinedAtModerateLoad) {
  // The headline functional difference (section 3.2/3.3): the pipelined
  // memory can start a departure any cycle after the head arrives; the wide
  // memory must usually wait for full assembly. Same traffic, same seeds.
  SwitchConfig cfg = wide_cfg(4, 64);
  TrafficSpec spec;
  spec.load = 0.6;
  spec.seed = 91;
  WideTestbench wide(cfg, cfg.n_ports, cfg.cell_format(), spec);
  PipelinedTestbench pipe(cfg, cfg.n_ports, cfg.cell_format(), spec);
  wide.run(40000);
  pipe.run(40000);
  wide.drain(500000);
  pipe.drain(500000);
  ASSERT_TRUE(wide.scoreboard().ok());
  ASSERT_TRUE(pipe.scoreboard().ok());
  EXPECT_GT(wide.scoreboard().latency().mean(), pipe.scoreboard().latency().mean());
}

}  // namespace
}  // namespace pmsb
