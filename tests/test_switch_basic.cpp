// Directed cycle-level tests of the pipelined shared-buffer switch: exact
// cut-through timing, staggered initiation, payload integrity, full-load
// throughput, drain/conservation.

#include <gtest/gtest.h>

#include "core/switch.hpp"
#include "core/testbench.hpp"

namespace pmsb {
namespace {

SwitchConfig small_cfg() {
  SwitchConfig cfg;
  cfg.n_ports = 2;
  cfg.word_bits = 8;
  cfg.cell_words = 4;  // = 2n, single segment.
  cfg.capacity_segments = 16;
  return cfg;
}

/// Manually push one cell into input `i` of a switch inside an engine. The
/// head appears on the input wire at cycle (engine.now() + 1).
Cycle feed_cell(Engine& eng, PipelinedSwitch& sw, unsigned i, std::uint64_t uid, unsigned dest) {
  const CellFormat fmt = sw.config().cell_format();
  const Cycle a0 = eng.now() + 1;
  for (unsigned k = 0; k < fmt.length_words; ++k) {
    sw.in_link(i).drive_next(Flit{true, k == 0, cell_word(uid, dest, k, fmt)});
    eng.step();
  }
  return a0;
}

TEST(SwitchBasic, SingleCellCutThroughHeadLatencyIsTwo) {
  const SwitchConfig cfg = small_cfg();
  PipelinedSwitch sw(cfg);
  Engine eng;
  eng.add(&sw);

  Cycle read_grant = -1, accept_t0 = -1;
  bool was_cut = false;
  SwitchEvents ev;
  ev.on_read_grant = [&](unsigned, unsigned, Cycle tr, Cycle, Cycle, bool cut) {
    read_grant = tr;
    was_cut = cut;
  };
  ev.on_accept = [&](unsigned, Cycle, Cycle t0) { accept_t0 = t0; };
  const pmsb::Subscription ev_sub = sw.events().subscribe(std::move(ev));

  std::vector<Flit> out_trace;
  const Cycle a0 = eng.now() + 1;
  const CellFormat fmt = cfg.cell_format();
  for (unsigned k = 0; k < fmt.length_words + 4; ++k) {
    if (k < fmt.length_words)
      sw.in_link(0).drive_next(Flit{true, k == 0, cell_word(7, 1, k, fmt)});
    eng.step();
    out_trace.push_back(sw.out_link(1).now());  // Wire value during cycle k+1.
  }
  // Write wave granted in the first window cycle, with a co-initiated snoop.
  EXPECT_EQ(accept_t0, a0 + 1);
  EXPECT_EQ(read_grant, a0 + 1);
  EXPECT_TRUE(was_cut);
  EXPECT_EQ(sw.stats().snoop_initiations, 1u);
  // Head word on the output wire during cycle a0 + 2. out_trace[k] is the
  // wire during cycle k+1, so index a0+1.
  ASSERT_GT(out_trace.size(), static_cast<std::size_t>(a0 + 1 + 4));
  const Flit& head = out_trace[a0 + 1];
  EXPECT_TRUE(head.valid);
  EXPECT_TRUE(head.sop);
  EXPECT_EQ(head.data, cell_word(7, 1, 0, fmt));
  // The remaining words follow back-to-back and match exactly.
  for (unsigned k = 1; k < fmt.length_words; ++k) {
    const Flit& f = out_trace[a0 + 1 + k];
    EXPECT_TRUE(f.valid);
    EXPECT_FALSE(f.sop);
    EXPECT_EQ(f.data, cell_word(7, 1, k, fmt));
  }
}

TEST(SwitchBasic, CellGoesToCorrectOutput) {
  const SwitchConfig cfg = small_cfg();
  PipelinedSwitch sw(cfg);
  Engine eng;
  eng.add(&sw);
  feed_cell(eng, sw, 0, 1, 0);
  bool out1_active = false;
  for (int k = 0; k < 12; ++k) {
    eng.step();
    out1_active |= sw.out_link(1).now().valid;
  }
  EXPECT_FALSE(out1_active);
  EXPECT_EQ(sw.stats().read_grants, 1u);
}

TEST(SwitchBasic, SimultaneousHeadsAreStaggeredByOneCycle) {
  // Two heads in the same cycle, destined to different (idle) outputs: one
  // initiates at a0+1, the other at a0+2 (section 3.4: staggered initiation,
  // expected penalty (p/4)(n-1)/n).
  const SwitchConfig cfg = small_cfg();
  PipelinedSwitch sw(cfg);
  Engine eng;
  eng.add(&sw);

  std::vector<Cycle> grants;
  SwitchEvents ev;
  ev.on_read_grant = [&](unsigned, unsigned, Cycle tr, Cycle, Cycle, bool) {
    grants.push_back(tr);
  };
  const pmsb::Subscription ev_sub = sw.events().subscribe(std::move(ev));

  const CellFormat fmt = cfg.cell_format();
  const Cycle a0 = eng.now() + 1;
  for (unsigned k = 0; k < fmt.length_words; ++k) {
    sw.in_link(0).drive_next(Flit{true, k == 0, cell_word(1, 0, k, fmt)});
    sw.in_link(1).drive_next(Flit{true, k == 0, cell_word(2, 1, k, fmt)});
    eng.step();
  }
  for (int k = 0; k < 12; ++k) eng.step();
  ASSERT_EQ(grants.size(), 2u);
  std::sort(grants.begin(), grants.end());
  EXPECT_EQ(grants[0], a0 + 1);
  EXPECT_EQ(grants[1], a0 + 2);
}

TEST(SwitchBasic, SecondCellToSameOutputWaitsForTheFirst) {
  const SwitchConfig cfg = small_cfg();
  PipelinedSwitch sw(cfg);
  Engine eng;
  eng.add(&sw);

  std::vector<Cycle> grants;
  SwitchEvents ev;
  ev.on_read_grant = [&](unsigned, unsigned, Cycle tr, Cycle, Cycle, bool) {
    grants.push_back(tr);
  };
  const pmsb::Subscription ev_sub = sw.events().subscribe(std::move(ev));

  const CellFormat fmt = cfg.cell_format();
  const Cycle a0 = eng.now() + 1;
  for (unsigned k = 0; k < fmt.length_words; ++k) {
    sw.in_link(0).drive_next(Flit{true, k == 0, cell_word(1, 1, k, fmt)});
    sw.in_link(1).drive_next(Flit{true, k == 0, cell_word(2, 1, k, fmt)});
    eng.step();
  }
  for (int k = 0; k < 20; ++k) eng.step();
  ASSERT_EQ(grants.size(), 2u);
  std::sort(grants.begin(), grants.end());
  EXPECT_EQ(grants[0], a0 + 1);
  // Read waves for one output must be >= L cycles apart (shared output row).
  EXPECT_EQ(grants[1], grants[0] + static_cast<Cycle>(cfg.cell_words));
}

TEST(SwitchBasic, BackToBackCellsOneInput) {
  // Saturated input, fixed destination: the output link must carry the cells
  // contiguously after the pipeline fills (full line rate through one port).
  const SwitchConfig cfg = small_cfg();
  PipelinedSwitch sw(cfg);
  Engine eng;
  eng.add(&sw);
  const unsigned kCells = 8;
  for (unsigned c = 0; c < kCells; ++c) feed_cell(eng, sw, 0, 100 + c, 1);
  for (int k = 0; k < 40; ++k) eng.step();
  // All words of all cells must have appeared (some already during feeding).
  EXPECT_EQ(sw.stats().read_grants, kCells);
  EXPECT_EQ(sw.stats().dropped(), 0u);
  EXPECT_TRUE(sw.drained());
}

TEST(SwitchBasic, CutThroughDisabledStillDelivers) {
  SwitchConfig cfg = small_cfg();
  cfg.cut_through = false;
  PipelinedSwitch sw(cfg);
  Engine eng;
  eng.add(&sw);

  Cycle tr = -1, t0 = -1;
  SwitchEvents ev;
  ev.on_read_grant = [&](unsigned, unsigned, Cycle tr_, Cycle t0_, Cycle, bool) {
    tr = tr_;
    t0 = t0_;
  };
  const pmsb::Subscription ev_sub = sw.events().subscribe(std::move(ev));
  feed_cell(eng, sw, 0, 5, 1);
  for (int k = 0; k < 16; ++k) eng.step();
  EXPECT_EQ(sw.stats().snoop_initiations, 0u);
  EXPECT_GT(tr, t0);  // Read strictly after the write wave started.
  EXPECT_EQ(sw.stats().read_grants, 1u);
}

TEST(SwitchBasic, FullLoadPermutationSustainsLineRate) {
  // Contention-free permutation at load 1.0: every output must be busy every
  // cycle once the pipeline fills -- the paper's full-line-rate claim (E5).
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 16;
  cfg.cell_words = 8;
  cfg.capacity_segments = 64;
  TrafficSpec spec;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.pattern = PatternKind::kPermutation;
  spec.load = 1.0;
  spec.seed = 3;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);

  tb.run(4000);
  const auto& st = tb.dut().stats();
  EXPECT_EQ(st.dropped(), 0u);
  // Deliveries: 4000 cycles / 8 words = 500 cells per output, minus pipeline
  // fill. Allow the fill transient.
  EXPECT_GE(tb.delivered(), 4u * 495u);
  EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
  EXPECT_TRUE(tb.drain());
  EXPECT_TRUE(tb.scoreboard().fully_drained());
}

TEST(SwitchBasic, ModerateUniformLoadIsLossless) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 16;
  cfg.cell_words = 8;
  cfg.capacity_segments = 256;
  TrafficSpec spec;
  spec.load = 0.7;
  spec.seed = 11;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(20000);
  EXPECT_TRUE(tb.drain());
  const auto& st = tb.dut().stats();
  EXPECT_EQ(st.dropped(), 0u);
  EXPECT_EQ(tb.injected(), tb.delivered());
  EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
  EXPECT_TRUE(tb.scoreboard().fully_drained());
}

TEST(SwitchBasic, MinimumObservedLatencyIsTwo) {
  SwitchConfig cfg = small_cfg();
  TrafficSpec spec;
  spec.load = 0.2;
  spec.seed = 21;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(20000);
  tb.drain();
  ASSERT_GT(tb.scoreboard().latency().samples(), 100u);
  EXPECT_EQ(tb.scoreboard().latency().min(), 2u);
}

TEST(SwitchBasic, TinyBufferDropsAreCleanlyAccounted) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 16;
  cfg.cell_words = 8;
  cfg.capacity_segments = 8;  // Only 8 cells of shared buffer.
  TrafficSpec spec;
  spec.load = 1.0;
  spec.arrivals = ArrivalKind::kSaturated;
  spec.pattern = PatternKind::kHotspot;
  spec.hot_fraction = 1.0;  // Everyone hammers output 0.
  spec.seed = 5;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(20000);
  EXPECT_TRUE(tb.drain());
  const auto& st = tb.dut().stats();
  EXPECT_GT(st.dropped(), 0u);
  EXPECT_EQ(st.dropped_no_slot, 0u);  // Single-segment cells never miss slots.
  // Conservation including drops.
  EXPECT_EQ(tb.injected(), tb.delivered() + st.dropped());
  EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
  EXPECT_TRUE(tb.scoreboard().fully_drained());
}

TEST(SwitchBasic, HotspotKeepsOtherOutputsFlowing) {
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 16;
  cfg.cell_words = 8;
  cfg.capacity_segments = 64;
  TrafficSpec spec;
  spec.load = 0.6;
  spec.pattern = PatternKind::kHotspot;
  spec.hot_fraction = 0.6;
  spec.seed = 8;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec, /*scoreboard=*/true);
  tb.run(30000);
  tb.drain(200000);
  EXPECT_TRUE(tb.scoreboard().ok()) << tb.scoreboard().errors().front();
  // Non-hot outputs saw traffic (no head-of-line style collapse).
  EXPECT_GT(tb.delivered(), 0u);
}

TEST(SwitchBasic, InvalidConfigsThrow) {
  SwitchConfig cfg = small_cfg();
  cfg.cell_words = 5;  // Not a multiple of 2n.
  EXPECT_THROW(PipelinedSwitch{cfg}, std::invalid_argument);
  cfg = small_cfg();
  cfg.word_bits = 1;  // dest_bits (1) >= word_bits.
  EXPECT_THROW(PipelinedSwitch{cfg}, std::invalid_argument);
  cfg = small_cfg();
  cfg.capacity_segments = 0;
  EXPECT_THROW(PipelinedSwitch{cfg}, std::invalid_argument);
}

TEST(SwitchBasic, DescribeMentionsGeometry) {
  const std::string d = telegraphos3().describe();
  EXPECT_NE(d.find("8x8"), std::string::npos);
  EXPECT_NE(d.find("16 stages"), std::string::npos);
}

TEST(SwitchConfigHelpers, GeometryArithmetic) {
  SwitchConfig cfg;
  cfg.n_ports = 8;
  cfg.word_bits = 16;
  cfg.cell_words = 32;  // Two segments.
  cfg.capacity_segments = 64;
  cfg.validate();
  EXPECT_EQ(cfg.stages(), 16u);
  EXPECT_EQ(cfg.segments_per_cell(), 2u);
  EXPECT_EQ(cfg.capacity_cells(), 32u);
  EXPECT_EQ(cfg.dest_bits(), 3u);
  EXPECT_EQ(cfg.cell_format().length_words, 32u);
}

TEST(SwitchConfigHelpers, TelegraphosFactoriesMatchThePaper) {
  const SwitchConfig t1 = telegraphos1();
  EXPECT_EQ(t1.n_ports, 4u);
  EXPECT_EQ(t1.word_bits, 8u);                     // 8 bits per clock per link.
  EXPECT_EQ(t1.cell_words * t1.word_bits, 64u);    // 8-byte packets.
  EXPECT_NEAR(t1.link_mbps(), 107.0, 1.0);         // 13.3 MHz x 8 b.

  const SwitchConfig t2 = telegraphos2();
  EXPECT_EQ(t2.cell_words * t2.word_bits, 128u);   // 16-byte packets.
  EXPECT_NEAR(t2.link_mbps(), 400.0, 1.0);         // 16 b / 40 ns.

  const SwitchConfig t3 = telegraphos3();
  EXPECT_EQ(t3.stages(), 16u);
  EXPECT_EQ(t3.capacity_cells(), 256u);            // 256 packets of 256 bits.
  EXPECT_EQ(t3.capacity_segments * t3.stages() * t3.word_bits, 65536u);  // 64 Kbit.
  EXPECT_NEAR(t3.link_mbps(), 1000.0, 1.0);        // 1 Gb/s worst case.
}

}  // namespace
}  // namespace pmsb
