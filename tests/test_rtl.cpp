// Unit tests: RTL primitives -- registers, the single-ported SRAM bank, the
// figure-5 control pipeline, and the figure-7 address-path models.

#include <gtest/gtest.h>

#include "rtl/addr_decoder.hpp"
#include "rtl/ctrl_pipeline.hpp"
#include "rtl/reg.hpp"
#include "rtl/sram_bank.hpp"

namespace pmsb {
namespace {

TEST(Reg, HoldsWithoutLoad) {
  Reg<int> r(5);
  r.tick();
  EXPECT_EQ(r.q(), 5);
}

TEST(Reg, LoadVisibleAfterTick) {
  Reg<int> r(0);
  r.set_d(7);
  EXPECT_EQ(r.q(), 0);  // Not yet clocked.
  r.tick();
  EXPECT_EQ(r.q(), 7);
}

TEST(Reg, LastWriteWinsWithinCycle) {
  Reg<int> r(0);
  r.set_d(1);
  r.set_d(2);
  r.tick();
  EXPECT_EQ(r.q(), 2);
}

TEST(SramBank, WriteCommitsAtTick) {
  SramBank m(16, 8);
  m.write(3, 0xAB);
  m.tick();
  EXPECT_EQ(m.read(3), 0xABu);
}

TEST(SramBank, ReadBeforeWriteSemantics) {
  SramBank m(16, 8);
  m.write(3, 0x11);
  m.tick();
  m.write(3, 0x22);
  // A read in the same cycle as the (staged) write would be a port
  // violation; read after tick sees the new value.
  m.tick();
  EXPECT_EQ(m.read(3), 0x22u);
}

TEST(SramBankDeath, TwoAccessesOneCycle) {
  SramBank m(16, 8);
  m.read(0);
  EXPECT_DEATH(m.read(1), "single-ported");
}

TEST(SramBankDeath, ReadPlusWriteOneCycle) {
  SramBank m(16, 8);
  m.write(0, 1);
  EXPECT_DEATH(m.read(0), "single-ported");
}

TEST(SramBankDeath, WideData) {
  SramBank m(16, 8);
  EXPECT_DEATH(m.write(0, 0x100), "wider");
}

TEST(SramBank, PortReopensEachCycle) {
  SramBank m(16, 8);
  for (int c = 0; c < 10; ++c) {
    m.write(c % 16, static_cast<Word>(c));
    m.tick();
  }
  EXPECT_EQ(m.total_writes(), 10u);
}

TEST(SramBank, SnoopReturnsBusData) {
  SramBank m(16, 8);
  EXPECT_EQ(m.write_snoop(5, 0x3C), 0x3Cu);
  m.tick();
  EXPECT_EQ(m.read(5), 0x3Cu);
}

TEST(SramBank, RetainsDataOverTime) {
  SramBank m(64, 16);
  for (std::size_t a = 0; a < 64; ++a) {
    m.write(a, static_cast<Word>(a * 3));
    m.tick();
  }
  for (std::size_t a = 0; a < 64; ++a) {
    EXPECT_EQ(m.read(a), a * 3);
    m.tick();
  }
}

TEST(CtrlPipeline, DelaysControlByOneCyclePerStage) {
  CtrlPipeline p(4);
  StageCtrl c;
  c.op = StageOp::kWrite;
  c.addr = 9;
  c.in_link = 2;
  p.initiate(c);
  // Cycle 0: stage 0 sees the wave.
  EXPECT_EQ(p.at(0).op, StageOp::kWrite);
  EXPECT_TRUE(p.at(1).idle());
  p.tick();
  // Cycle 1: stage 1 sees it, stage 0 idle.
  EXPECT_TRUE(p.at(0).idle());
  EXPECT_EQ(p.at(1).op, StageOp::kWrite);
  EXPECT_EQ(p.at(1).addr, 9u);
  p.tick();
  EXPECT_EQ(p.at(2).op, StageOp::kWrite);
  p.tick();
  EXPECT_EQ(p.at(3).op, StageOp::kWrite);
  EXPECT_TRUE(p.busy());
  p.tick();
  EXPECT_FALSE(p.busy());
}

TEST(CtrlPipeline, TwoWavesPipeline) {
  CtrlPipeline p(3);
  StageCtrl a, b;
  a.op = StageOp::kRead;
  a.addr = 1;
  b.op = StageOp::kWrite;
  b.addr = 2;
  p.initiate(a);
  p.tick();
  p.initiate(b);
  EXPECT_EQ(p.at(0).op, StageOp::kWrite);
  EXPECT_EQ(p.at(1).op, StageOp::kRead);
  p.tick();
  EXPECT_EQ(p.at(1).op, StageOp::kWrite);
  EXPECT_EQ(p.at(2).op, StageOp::kRead);
}

TEST(CtrlPipelineDeath, DoubleInitiate) {
  CtrlPipeline p(3);
  StageCtrl c;
  c.op = StageOp::kRead;
  p.initiate(c);
  EXPECT_DEATH(p.initiate(c), "single-ported");
}

TEST(CtrlPipeline, CountsTransfers) {
  CtrlPipeline p(4);
  StageCtrl c;
  c.op = StageOp::kRead;
  p.initiate(c);
  for (int i = 0; i < 4; ++i) p.tick();
  // The wave crossed 3 pipeline registers.
  EXPECT_EQ(p.ctrl_reg_transfers(), 3u);
}

TEST(OneHot, DecodeEncodeRoundTrip) {
  for (std::uint32_t a = 0; a < 16; ++a) {
    EXPECT_EQ(encode_from_one_hot(decode_one_hot(a, 16)), a);
  }
}

TEST(OneHotDeath, NotOneHot) {
  std::vector<bool> lines(8, false);
  lines[2] = lines[5] = true;
  EXPECT_DEATH(encode_from_one_hot(lines), "one-hot");
}

class AddressPathTest : public ::testing::TestWithParam<AddrPathMode> {};

TEST_P(AddressPathTest, FollowsWaveDownTheStages) {
  const unsigned kStages = 6;
  AddressPath ap(kStages, 32, GetParam());
  CtrlPipeline cp(kStages);

  StageCtrl c;
  c.op = StageOp::kWrite;
  c.addr = 17;
  cp.initiate(c);
  for (unsigned cycle = 0; cycle < kStages; ++cycle) {
    for (unsigned s = 0; s < kStages; ++s) {
      const StageCtrl& sc = cp.at(s);
      const long a = ap.active_addr(s, sc.addr, !sc.idle());
      if (s == cycle)
        EXPECT_EQ(a, 17) << "stage " << s << " cycle " << cycle;
      else
        EXPECT_EQ(a, -1) << "stage " << s << " cycle " << cycle;
    }
    cp.tick();
    ap.tick();
  }
}

TEST_P(AddressPathTest, BackToBackWaves) {
  const unsigned kStages = 4;
  AddressPath ap(kStages, 8, GetParam());
  CtrlPipeline cp(kStages);
  // Initiate a wave every cycle with a different address; every stage must
  // track its own wave's address.
  for (unsigned cycle = 0; cycle < 10; ++cycle) {
    StageCtrl c;
    c.op = StageOp::kRead;
    c.addr = cycle % 8;
    cp.initiate(c);
    for (unsigned s = 0; s < kStages; ++s) {
      const StageCtrl& sc = cp.at(s);
      const long a = ap.active_addr(s, sc.addr, !sc.idle());
      if (cycle >= s) {
        EXPECT_EQ(a, static_cast<long>((cycle - s) % 8));
      }
    }
    cp.tick();
    ap.tick();
  }
}

INSTANTIATE_TEST_SUITE_P(BothModes, AddressPathTest,
                         ::testing::Values(AddrPathMode::kPerStageDecoders,
                                           AddrPathMode::kDecodedPipeline));

TEST(AddressPath, DecodeOpCounts) {
  // Figure 7(a) pays one decode per stage per wave; figure 7(b) decodes once
  // and pays register transfers instead.
  const unsigned kStages = 8;
  auto run = [&](AddrPathMode mode) {
    AddressPath ap(kStages, 16, mode);
    CtrlPipeline cp(kStages);
    for (unsigned cycle = 0; cycle < 20; ++cycle) {
      if (cycle < 10) {
        StageCtrl c;
        c.op = StageOp::kWrite;
        c.addr = cycle % 16;
        cp.initiate(c);
      }
      for (unsigned s = 0; s < kStages; ++s) {
        const StageCtrl& sc = cp.at(s);
        ap.active_addr(s, sc.addr, !sc.idle());
      }
      cp.tick();
      ap.tick();
    }
    return std::pair{ap.decode_ops(), ap.one_hot_reg_transfers()};
  };
  const auto [dec_a, xfer_a] = run(AddrPathMode::kPerStageDecoders);
  const auto [dec_b, xfer_b] = run(AddrPathMode::kDecodedPipeline);
  EXPECT_EQ(dec_a, 10u * kStages);  // 10 waves x 8 stages.
  EXPECT_EQ(xfer_a, 0u);
  EXPECT_EQ(dec_b, 10u);            // One decode per wave.
  EXPECT_EQ(xfer_b, 10u * (kStages - 1));
}

}  // namespace
}  // namespace pmsb
