// Tests of the multistage networks behind the unified construction path:
// exact wiring/routing of the kBanyan / kOmega / kClos topology kinds, and
// flit-level wormhole fabrics built through fabric::Fabric::build.
//
// One legacy test keeps the deprecated cell-level net::BanyanNetwork shim
// covered until its removal next release.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "fabric/fabric.hpp"
#include "net/banyan.hpp"
#include "net/topology.hpp"

namespace pmsb::net {
namespace {

// ---------------------------------------------------------------------------
// Topology kind exactness
// ---------------------------------------------------------------------------

TEST(MultistageTopology, BanyanGeometry) {
  const Topology t{TopologyKind::kBanyan, 16, 1};
  EXPECT_TRUE(t.multistage());
  EXPECT_EQ(t.endpoints(), 16u);
  EXPECT_EQ(t.stages(), 4u);            // log2(16)
  EXPECT_EQ(t.elements_per_stage(), 8u);  // N/2
  EXPECT_EQ(t.nodes(), 32u);
  EXPECT_EQ(t.required_ports(), 2u);
  EXPECT_EQ(t.hops(0, 15), t.stages() - 1);
  EXPECT_EQ(t.hops(3, 3), t.stages() - 1);  // no local bypass
  EXPECT_EQ(t.describe(), "banyan 16");
}

TEST(MultistageTopology, OmegaGeometry) {
  const Topology t{TopologyKind::kOmega, 8, 1};
  EXPECT_EQ(t.stages(), 3u);
  EXPECT_EQ(t.elements_per_stage(), 4u);
  EXPECT_EQ(t.nodes(), 12u);
  EXPECT_EQ(t.describe(), "omega 8");
}

TEST(MultistageTopology, ClosGeometry) {
  const Topology t{TopologyKind::kClos, 16, 1, /*radix=*/4};
  EXPECT_EQ(t.stages(), 3u);
  EXPECT_EQ(t.elements_per_stage(), 4u);  // k
  EXPECT_EQ(t.nodes(), 12u);
  EXPECT_EQ(t.required_ports(), 4u);
  EXPECT_EQ(t.describe(), "clos 16 (radix 4)");
}

/// Banyan / omega per-stage routing is the classic single-bit test: stage s
/// of a log2(N)-stage network corrects bit n-1-s of the destination,
/// independent of where the flit currently is.
TEST(MultistageTopology, BanyanAndOmegaRouteOnDestinationBits) {
  for (const TopologyKind kind : {TopologyKind::kBanyan, TopologyKind::kOmega}) {
    const Topology t{kind, 16, 1};
    const unsigned n = 4;  // log2(16)
    for (unsigned node = 0; node < t.nodes(); ++node) {
      const unsigned s = t.stage_of(node);
      for (unsigned in = 0; in < 2; ++in)
        for (unsigned dest = 0; dest < 16; ++dest)
          EXPECT_EQ(t.route_stage(node, in, dest), (dest >> (n - 1 - s)) & 1u);
    }
  }
}

/// The Clos wiring from the header: ingress j's output p reaches middle p's
/// input j; middle m's output q reaches egress q's input m.
TEST(MultistageTopology, ClosWiringExact) {
  const Topology t{TopologyKind::kClos, 16, 1, /*radix=*/4};
  const unsigned k = 4;
  for (unsigned j = 0; j < k; ++j) {
    for (unsigned p = 0; p < k; ++p) {
      const unsigned ingress = t.node_id(0, j);
      ASSERT_EQ(static_cast<unsigned>(t.neighbor(ingress, p)), t.node_id(1, p));
      EXPECT_EQ(t.peer_in_port(ingress, p), j);
      const unsigned middle = t.node_id(1, j);
      ASSERT_EQ(static_cast<unsigned>(t.neighbor(middle, p)), t.node_id(2, p));
      EXPECT_EQ(t.peer_in_port(middle, p), j);
    }
  }
}

/// Strongest exactness check, implementation-independent: walk every
/// (source, destination) pair from its ingress port through route_stage /
/// neighbor / peer_in_port and require arrival at exactly `dest` after
/// exactly stages() - 1 inter-element links.
void walk_every_pair(const Topology& t) {
  const unsigned n = t.endpoints();
  for (unsigned src = 0; src < n; ++src) {
    for (unsigned dest = 0; dest < n; ++dest) {
      auto [node, in_port] = t.ingress_of(src);
      unsigned links = 0;
      while (t.stage_of(node) + 1 < t.stages()) {
        const unsigned out = t.route_stage(node, in_port, dest);
        const int next = t.neighbor(node, out);
        ASSERT_GE(next, 0);
        in_port = t.peer_in_port(node, out);
        node = static_cast<unsigned>(next);
        ++links;
      }
      const unsigned out = t.route_stage(node, in_port, dest);
      EXPECT_EQ(t.egress_endpoint(node, out), dest)
          << t.describe() << ": " << src << " -> " << dest;
      EXPECT_EQ(links, t.stages() - 1);
    }
  }
}

TEST(MultistageTopology, BanyanEveryPairReachesItsEgress) {
  walk_every_pair(Topology{TopologyKind::kBanyan, 16, 1});
  walk_every_pair(Topology{TopologyKind::kBanyan, 32, 1});
}

TEST(MultistageTopology, OmegaEveryPairReachesItsEgress) {
  walk_every_pair(Topology{TopologyKind::kOmega, 16, 1});
  walk_every_pair(Topology{TopologyKind::kOmega, 32, 1});
}

TEST(MultistageTopology, ClosEveryPairReachesItsEgress) {
  walk_every_pair(Topology{TopologyKind::kClos, 16, 1, 4});
  walk_every_pair(Topology{TopologyKind::kClos, 9, 1, 3});
}

// ---------------------------------------------------------------------------
// Wormhole fabrics through the one public construction path
// ---------------------------------------------------------------------------

/// All fabrics go through the one public construction path,
/// fabric::Fabric::build(topology, config).
std::unique_ptr<fabric::Fabric> make_worm(const Topology& topo, const char* traffic,
                                          unsigned lanes) {
  fabric::FabricConfig cfg;
  cfg.topo = topo;
  cfg.link_pipe_stages = 1;
  cfg.seed = 7;
  cfg.lanes = lanes;
  cfg.buffer_flits = 16;
  cfg.message_flits = 4;
  cfg.traffic = traffic;
  return fabric::Fabric::build(topo, cfg);
}

/// Lossless flit transport: every kind delivers, verifies payloads end to
/// end, and conserves messages (injected = delivered + backlog + in flight).
TEST(WormFabric, AllKindsDeliverLosslessly) {
  const std::vector<Topology> kinds = {
      Topology{TopologyKind::kBanyan, 16, 1},
      Topology{TopologyKind::kOmega, 16, 1},
      Topology{TopologyKind::kClos, 16, 1, 4},
  };
  for (const Topology& topo : kinds) {
    const auto fab = make_worm(topo, "uniform:0.4", 2);
    fab->run(4000);
    const fabric::FabricStats st = fab->stats();
    EXPECT_GT(st.delivered, 0u) << topo.describe();
    EXPECT_EQ(st.payload_errors, 0u) << topo.describe();
    EXPECT_EQ(st.injected, st.delivered + st.backlog + st.in_network)
        << topo.describe();
  }
}

/// Permutation traffic is contention-light; the same seed must reproduce
/// the same delivery digest on rebuilt fabrics (construction determinism).
TEST(WormFabric, RebuildReproducesDigest) {
  const Topology topo{TopologyKind::kBanyan, 16, 1};
  const auto a = make_worm(topo, "permutation:0.5", 2);
  const auto b = make_worm(topo, "permutation:0.5", 2);
  a->run(3000);
  b->run(3000);
  EXPECT_GT(a->stats().delivered, 0u);
  EXPECT_EQ(a->stats().uid_digest, b->stats().uid_digest);
  EXPECT_EQ(a->stats().delivered, b->stats().delivered);
}

// ---------------------------------------------------------------------------
// Legacy cell-level shim (net::BanyanNetwork) -- kept until removal
// ---------------------------------------------------------------------------

/// One word of the cell `uid` -> endpoint `dest`; the head's VC field
/// carries the destination, the dest_bits field starts as zero (the first
/// stage's translator overwrites it).
Word banyan_word(const BanyanNetwork& net, std::uint64_t uid, unsigned dest, unsigned k) {
  const CellFormat fmt = net.cell_format();
  Word w = cell_word(uid, 0, k, fmt);
  if (k == 0) w = make_translated_head(w, fmt, net.vc_bits(), 0, dest);
  return w;
}

TEST(BanyanShim, Routes16x16EveryPairRadix4) {
  BanyanConfig cfg;
  cfg.radix = 4;
  cfg.stages = 2;
  BanyanNetwork net(cfg);
  Engine eng;
  net.attach(eng);
  const unsigned n = net.endpoints();
  const CellFormat fmt = net.cell_format();
  std::uint64_t uid = 1;
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned d = 0; d < n; ++d) {
      const std::uint64_t this_uid = uid++;
      const int settle = 12 * static_cast<int>(cfg.stages * cfg.radix);
      std::map<unsigned, unsigned> sop_seen;
      for (int k = 0; k < static_cast<int>(fmt.length_words) + settle; ++k) {
        if (k < static_cast<int>(fmt.length_words))
          net.in_link(i).drive_next(Flit{true, k == 0, banyan_word(net, this_uid, d, k)});
        eng.step();
        for (unsigned o = 0; o < n; ++o)
          if (net.out_link(o).now().sop) ++sop_seen[o];
      }
      ASSERT_EQ(sop_seen.size(), 1u) << "in " << i << " -> " << d;
      ASSERT_TRUE(sop_seen.count(d)) << "in " << i << " -> " << d;
      ASSERT_TRUE(net.drained());
    }
  }
  EXPECT_EQ(net.total_drops(), 0u);
}

TEST(BanyanShim, InvalidGeometriesThrow) {
  BanyanConfig cfg;
  cfg.radix = 1;
  EXPECT_THROW(BanyanNetwork{cfg}, std::invalid_argument);
  cfg.radix = 4;
  cfg.stages = 0;
  EXPECT_THROW(BanyanNetwork{cfg}, std::invalid_argument);
  cfg.stages = 4;
  cfg.word_bits = 8;  // 256 endpoints need 8 VC bits > the 6-bit tag.
  EXPECT_THROW(BanyanNetwork{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace pmsb::net
