// Tests of the multistage (delta/banyan) network of pipelined switches:
// self-routing correctness for every (input, output) pair at two geometries,
// payload integrity under load, and internal-drop accounting.

#include <gtest/gtest.h>

#include <map>

#include "net/banyan.hpp"

namespace pmsb::net {
namespace {

/// One word of the cell `uid` -> endpoint `dest`; the head's VC field
/// carries the destination, the dest_bits field starts as zero (the first
/// stage's translator overwrites it).
Word banyan_word(const BanyanNetwork& net, std::uint64_t uid, unsigned dest, unsigned k) {
  const CellFormat fmt = net.cell_format();
  Word w = cell_word(uid, 0, k, fmt);
  if (k == 0) w = make_translated_head(w, fmt, net.vc_bits(), 0, dest);
  return w;
}

struct DeliveryProbe {
  // Per endpoint: sequence of (vc, body-ok) of completed cells.
  struct Cell {
    std::uint32_t vc;
    std::uint64_t uid_tag;
    bool body_ok;
  };
  std::map<unsigned, std::vector<Cell>> delivered;

  void observe(BanyanNetwork& net, std::uint64_t expect_uid) {
    const CellFormat fmt = net.cell_format();
    for (unsigned o = 0; o < net.endpoints(); ++o) {
      const Flit& f = net.out_link(o).now();
      if (!f.valid) continue;
      if (f.sop) {
        state_[o] = State{head_vc(f.data, fmt, net.vc_bits()), 1, true};
      } else {
        State& st = state_[o];
        st.body_ok &= (f.data == cell_word(expect_uid, 0, st.idx, fmt));
        ++st.idx;
        if (st.idx == fmt.length_words)
          delivered[o].push_back(Cell{st.vc, expect_uid, st.body_ok});
      }
    }
  }

 private:
  struct State {
    std::uint32_t vc = 0;
    unsigned idx = 0;
    bool body_ok = true;
  };
  std::map<unsigned, State> state_;
};

void route_every_pair(const BanyanConfig& cfg) {
  BanyanNetwork net(cfg);
  Engine eng;
  net.attach(eng);
  const unsigned n = net.endpoints();
  std::uint64_t uid = 1;
  for (unsigned i = 0; i < n; ++i) {
    for (unsigned d = 0; d < n; ++d) {
      DeliveryProbe probe;
      const std::uint64_t this_uid = uid++;
      const CellFormat fmt = net.cell_format();
      const int settle = 12 * static_cast<int>(cfg.stages * cfg.radix);
      for (int k = 0; k < static_cast<int>(fmt.length_words) + settle; ++k) {
        if (k < static_cast<int>(fmt.length_words))
          net.in_link(i).drive_next(Flit{true, k == 0, banyan_word(net, this_uid, d, k)});
        eng.step();
        probe.observe(net, this_uid);
      }
      ASSERT_EQ(probe.delivered.size(), 1u) << "in " << i << " -> " << d;
      ASSERT_TRUE(probe.delivered.count(d)) << "in " << i << " -> " << d;
      const auto& cell = probe.delivered[d].front();
      EXPECT_EQ(cell.vc, d);
      EXPECT_TRUE(cell.body_ok);
      ASSERT_TRUE(net.drained());
    }
  }
  EXPECT_EQ(net.total_drops(), 0u);
}

TEST(Banyan, Routes16x16EveryPairRadix4) {
  BanyanConfig cfg;
  cfg.radix = 4;
  cfg.stages = 2;
  route_every_pair(cfg);
}

TEST(Banyan, Routes8x8EveryPairRadix2ThreeStages) {
  BanyanConfig cfg;
  cfg.radix = 2;
  cfg.stages = 3;
  cfg.capacity_cells = 16;
  route_every_pair(cfg);
}

TEST(Banyan, PermutationTrafficAllDelivered) {
  // A full permutation injected simultaneously: internal blocking may queue
  // cells in element buffers (banyans are blocking networks!), but nothing
  // may be lost at this capacity, and everything must drain to the right
  // endpoints.
  BanyanConfig cfg;
  cfg.radix = 4;
  cfg.stages = 2;
  cfg.capacity_cells = 64;
  BanyanNetwork net(cfg);
  Engine eng;
  net.attach(eng);
  const unsigned n = net.endpoints();
  const CellFormat fmt = net.cell_format();

  // dest = a fixed affine shuffle (worst-ish case for delta networks).
  std::vector<unsigned> sop_seen(n, 0);
  std::uint64_t heads_out = 0;
  auto scan = [&] {
    for (unsigned o = 0; o < n; ++o) {
      if (net.out_link(o).now().sop) {
        ++heads_out;
        ++sop_seen[o];
      }
    }
  };
  for (unsigned k = 0; k < fmt.length_words; ++k) {
    for (unsigned i = 0; i < n; ++i) {
      const unsigned dest = (i * 5 + 3) % n;
      Word w = cell_word(1000 + i, 0, k, fmt);
      if (k == 0) w = make_translated_head(w, fmt, net.vc_bits(), 0, dest);
      net.in_link(i).drive_next(Flit{true, k == 0, w});
    }
    eng.step();
    scan();
  }
  for (int k = 0; k < 600; ++k) {
    eng.step();
    scan();
  }
  EXPECT_EQ(net.total_drops(), 0u);
  EXPECT_EQ(heads_out, n);
  for (unsigned o = 0; o < n; ++o) EXPECT_EQ(sop_seen[o], 1u) << "endpoint " << o;
  EXPECT_TRUE(net.drained());
}

TEST(Banyan, HotspotDropsAreCountedPerStage) {
  // Everyone floods endpoint 0 with tiny element buffers: the excess must
  // show up in the per-stage drop counters, conservation intact.
  BanyanConfig cfg;
  cfg.radix = 4;
  cfg.stages = 2;
  cfg.capacity_cells = 8;
  BanyanNetwork net(cfg);
  Engine eng;
  net.attach(eng);
  const unsigned n = net.endpoints();
  const CellFormat fmt = net.cell_format();
  const unsigned kCellsPerInput = 20;
  std::uint64_t heads_out = 0;
  for (unsigned c = 0; c < kCellsPerInput; ++c) {
    for (unsigned k = 0; k < fmt.length_words; ++k) {
      for (unsigned i = 0; i < n; ++i) {
        Word w = cell_word(5000 + i * 100 + c, 0, k, fmt);
        if (k == 0) w = make_translated_head(w, fmt, net.vc_bits(), 0, 0);
        net.in_link(i).drive_next(Flit{true, k == 0, w});
      }
      eng.step();
      heads_out += net.out_link(0).now().sop;
    }
  }
  for (int k = 0; k < 6000; ++k) {
    eng.step();
    heads_out += net.out_link(0).now().sop;
  }
  ASSERT_TRUE(net.drained());
  EXPECT_GT(net.total_drops(), 0u);
  EXPECT_EQ(heads_out + net.total_drops(),
            static_cast<std::uint64_t>(n) * kCellsPerInput);
}

TEST(Banyan, InvalidGeometriesThrow) {
  BanyanConfig cfg;
  cfg.radix = 1;
  EXPECT_THROW(BanyanNetwork{cfg}, std::invalid_argument);
  cfg.radix = 4;
  cfg.stages = 0;
  EXPECT_THROW(BanyanNetwork{cfg}, std::invalid_argument);
  cfg.stages = 4;
  cfg.word_bits = 8;  // 256 endpoints need 8 VC bits > the 6-bit tag.
  EXPECT_THROW(BanyanNetwork{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace pmsb::net
