// ATM-style fabric study: a 16x16 pipelined-memory shared-buffer switch
// carrying fixed-size cells (the paper argues high-speed networks converge
// to fixed-size cells, section 2.3 -- "ATM, with 53-byte fixed-size cells,
// is a big step in that direction").
//
// The cell here is one quantum of the 16x16 geometry: 32 words x 16 bits =
// 64 bytes -- the padded-ATM-cell size the quantum discussion of section 3.5
// contemplates (32-64 bytes). The program sweeps offered load and prints
// delivered throughput, loss, and the head-latency distribution, for both
// smooth (Bernoulli) and bursty (on/off) traffic, with payload verification
// on every delivered cell.

#include <cstdio>

#include "core/testbench.hpp"
#include "stats/table.hpp"

using namespace pmsb;

namespace {

struct RunResult {
  double util;
  double loss;
  std::uint64_t lat_min, lat_p50, lat_p99;
  double lat_mean;
  bool verified;
};

RunResult run(const SwitchConfig& cfg, double load, bool bursty, std::uint64_t seed) {
  TrafficSpec spec;
  spec.load = load;
  spec.bursty = bursty;
  spec.mean_burst_cells = 8.0;
  spec.seed = seed;
  PipelinedTestbench tb(cfg, cfg.n_ports, cfg.cell_format(), spec);
  tb.run(120000);
  tb.drain(1000000);
  const auto& sb = tb.scoreboard();
  RunResult r;
  r.util = static_cast<double>(tb.delivered()) * cfg.cell_words /
           (static_cast<double>(cfg.n_ports) * 120000.0);
  r.loss = sb.injected() == 0
               ? 0.0
               : static_cast<double>(sb.dropped()) / static_cast<double>(sb.injected());
  r.lat_min = sb.latency().min();
  r.lat_p50 = sb.latency().p50();
  r.lat_p99 = sb.latency().p99();
  r.lat_mean = sb.latency().mean();
  r.verified = sb.ok() && sb.fully_drained();
  return r;
}

}  // namespace

int main() {
  SwitchConfig cfg;
  cfg.n_ports = 16;
  cfg.word_bits = 16;
  cfg.cell_words = 32;          // 64-byte cells (one quantum at n = 16).
  cfg.capacity_segments = 256;  // 256-cell shared buffer (16 KB).
  cfg.clock_mhz = 200.0;        // A late-90s-ASIC-ish what-if clock.
  cfg.validate();

  std::printf("ATM-style fabric: %s\n", cfg.describe().c_str());
  std::printf("Cell = %u bytes; every delivered cell is payload-verified and\n"
              "per-flow FIFO order is checked by the scoreboard.\n",
              cfg.cell_words * cfg.word_bits / 8);

  for (bool bursty : {false, true}) {
    std::printf("\n%s traffic (uniform destinations):\n\n",
                bursty ? "Bursty on/off (mean burst 8 cells)" : "Smooth Bernoulli");
    Table t({"offered", "carried", "loss", "lat min", "lat p50", "lat p99", "lat mean",
             "verified"});
    for (double load : {0.3, 0.5, 0.7, 0.85, 0.95}) {
      const RunResult r = run(cfg, load, bursty, 1000 + static_cast<int>(load * 100));
      t.add_row({Table::num(load, 2), Table::num(r.util, 3), Table::sci(r.loss, 1),
                 Table::integer(static_cast<long long>(r.lat_min)),
                 Table::integer(static_cast<long long>(r.lat_p50)),
                 Table::integer(static_cast<long long>(r.lat_p99)),
                 Table::num(r.lat_mean, 1), r.verified ? "yes" : "NO"});
    }
    t.print();
  }

  std::printf(
      "\nReading: latency is head-in to head-out in cycles (min 2 = pure\n"
      "cut-through). Bursty traffic needs the shared buffer's statistical\n"
      "multiplexing: same pool, higher occupancy, loss appears earlier --\n"
      "exactly why sizing studies (bench E3) use loss-vs-capacity curves.\n");
  return 0;
}
