// cluster_lan: a small Telegraphos-style LAN -- EIGHT 2x2 pipelined-memory
// switches on a ring (the paper's context: "switches ... enable parallel
// processing on workstations clustered through gigabit LANs", section 4) --
// expressed on the sharded fabric engine (src/fabric/).
//
//   [ sw0 ] <-> [ sw1 ] <-> [ sw2 ] <-> ... <-> [ sw7 ] <-> (wraps to sw0)
//
// Each node's hosts statistically share the node's injection point: cells
// board idle slots on the ring, carry their destination node in the head
// word's tag bits, and every PortBridge rewrites the hop field on the fly
// (hop-by-hop translation, as the Telegraphos RT block does at each
// ingress). The fabric verifies payload integrity end to end and accounts
// latency per route length.
//
// Because the whole LAN runs on the fabric engine, it also demonstrates the
// engine's determinism contract for free: the run is repeated sharded
// across 2 worker threads and must reproduce the single-thread delivery
// digest bit for bit.

#include <cstdio>
#include <memory>

#include "fabric/fabric.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "stats/table.hpp"

using namespace pmsb;

namespace {

/// The one public construction path: Fabric::build(topology, config).
std::unique_ptr<fabric::Fabric> make_fabric(const fabric::FabricConfig& cfg) {
  return fabric::Fabric::build(cfg.topo, cfg);
}

fabric::FabricConfig lan_config(unsigned threads) {
  fabric::FabricConfig cfg;
  cfg.topo = net::Topology{net::TopologyKind::kRing, 8, 1};
  cfg.node = SwitchConfig::for_ports(2);  // 2x2: left ring port, right ring port.
  cfg.link_pipe_stages = 2;               // Short LAN links: 3-cycle wires.
  cfg.load = 0.5;                         // Per-node offered load.
  cfg.seed = 2026;
  cfg.threads = threads;
  return cfg;
}

}  // namespace

int main() {
  const Cycle kCycles = 60000;
  const fabric::FabricConfig cfg = lan_config(1);

  std::printf("Telegraphos-style LAN: %s of 2x2 switches (%s),\n"
              "per-node load %.2f on the fabric engine.\n\n",
              cfg.topo.describe().c_str(), cfg.node.describe().c_str(), cfg.load);

  obs::MetricsRegistry metrics;
  const auto lan = make_fabric(cfg);
  lan->register_metrics(&metrics);
  lan->run(kCycles);
  const fabric::FabricStats st = lan->stats();

  Table t({"hops (switches)", "cells", "lat min possible", "lat mean"});
  for (const auto& row : st.by_hops) {
    if (row.cells == 0) continue;
    t.add_row({Table::integer(row.hops), Table::integer(static_cast<long long>(row.cells)),
               Table::integer(static_cast<long long>(
                   row.hops * (cfg.link_pipe_stages + 1) + cfg.node.cell_words)),
               Table::num(row.mean_latency, 1)});
  }
  t.print();

  std::printf("\nTotals: injected %llu, delivered %llu, in network %llu, backlog %llu,\n"
              "switch drops %llu; mean latency %.1f cycles (peak in-network occupancy "
              "%.0f cells).\n",
              static_cast<unsigned long long>(st.injected),
              static_cast<unsigned long long>(st.delivered),
              static_cast<unsigned long long>(st.in_network),
              static_cast<unsigned long long>(st.backlog),
              static_cast<unsigned long long>(st.dropped()), st.mean_latency,
              metrics.find_gauge("fabric.in_network")->max);
  std::printf("Integrity: %llu payload errors.\n",
              static_cast<unsigned long long>(st.payload_errors));

  // Same LAN, sharded across two workers: the delivery record must be
  // bit-identical (conservative lookahead = link_pipe_stages).
  const auto sharded = make_fabric(lan_config(2));
  sharded->run(kCycles);
  const bool deterministic = sharded->stats().uid_digest == st.uid_digest &&
                             sharded->stats().delivered == st.delivered;
  std::printf("\nDeterminism: 2-thread rerun %s the single-thread digest %016llx.\n",
              deterministic ? "reproduces" : "DIVERGES FROM",
              static_cast<unsigned long long>(st.uid_digest));

  std::printf(
      "\nReading: neighbour traffic cuts through in one link + one switch; each\n"
      "extra ring hop adds a store-and-forward relay. This is the paper's LAN\n"
      "use case: bursts from the hosts behind each switch statistically share\n"
      "one buffer pool per node while every ring link stays busy.\n");
  return (st.payload_errors || !deterministic) ? 1 : 0;
}
