// cluster_lan: a small Telegraphos-style LAN built from FOUR 4x4
// pipelined-memory switches on a ring, with two hosts per switch (the
// paper's context: "switches ... enable parallel processing on workstations
// clustered through gigabit LANs", section 4).
//
//        host0 host1      host2 host3
//          |     |          |     |
//        [ switch0 ] <---> [ switch1 ]
//            ^                  v
//        [ switch3 ] <---> [ switch2 ]
//          |     |          |     |
//        host6 host7      host4 host5
//
// Each switch port 0/1 is the ring (left/right); ports 2/3 are hosts. Cells
// carry the *global* destination host as a VIRTUAL CIRCUIT id in the head
// word's tag bits; a HeaderTranslator with a programmed RoutingTable at each
// ring ingress rewrites the head's local-output field -- hop-by-hop routing
// exactly as the Telegraphos translation memory does (the RT block of
// figure 6, src/core/routing_table.hpp). End-to-end latency is measured per
// hop count; payload words verify integrity across hops.

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "core/routing_table.hpp"
#include "core/switch.hpp"
#include "sim/engine.hpp"
#include "stats/stats.hpp"
#include "stats/table.hpp"

using namespace pmsb;

namespace {

constexpr unsigned kSwitches = 4;
constexpr unsigned kHostsPerSwitch = 2;
constexpr unsigned kHosts = kSwitches * kHostsPerSwitch;
constexpr unsigned kPortLeft = 0, kPortRight = 1;

unsigned switch_of(unsigned host) { return host / kHostsPerSwitch; }
unsigned host_port(unsigned host) { return 2 + host % kHostsPerSwitch; }

/// Local output port at switch `sw` for a cell destined to `host`.
unsigned route(unsigned sw, unsigned host) {
  const unsigned dsw = switch_of(host);
  const unsigned fwd = (dsw + kSwitches - sw) % kSwitches;
  if (fwd == 0) return host_port(host);
  return fwd <= kSwitches / 2 ? kPortRight : kPortLeft;
}

/// Head word layout: [local_port:2 | vc = dest_host:3 | uid_hi:11]; word 1
/// holds uid_lo (16 bits); remaining words are mix64(uid, k) payload. The
/// dest-host field doubles as the virtual-circuit id the ring's routing
/// tables translate on (they keep next_vc == vc: the VC *is* the host).
constexpr unsigned kVcBits = 3;
Word head_word(unsigned port, unsigned host, std::uint64_t uid) {
  return (port & 3) | ((host & 7) << 2) | (((uid >> 16) & 0x7FF) << 5);
}
Word body_word(std::uint64_t uid, unsigned k) { return mix64(uid * 1315423911u + k) & 0xFFFF; }

struct Lan {
  SwitchConfig cfg;
  Engine eng;
  std::vector<std::unique_ptr<PipelinedSwitch>> sw;

  explicit Lan() {
    cfg.n_ports = 4;
    cfg.word_bits = 16;
    cfg.cell_words = 8;
    cfg.capacity_segments = 128;
    cfg.validate();
    for (unsigned s = 0; s < kSwitches; ++s) sw.push_back(std::make_unique<PipelinedSwitch>(cfg));
  }
};

/// Build the routing table for a ring ingress into switch `sw`: every
/// destination host's VC maps to the local output port `route(sw, host)`;
/// the VC is carried unchanged (it names the host globally).
RoutingTable make_ring_table(unsigned sw) {
  RoutingTable rt(kVcBits);
  for (unsigned host = 0; host < kHosts; ++host)
    rt.program(host, static_cast<std::uint16_t>(route(sw, host)), host);
  return rt;
}

/// Host NIC: injects cells to random other hosts and checks what arrives.
class HostNic : public Component {
 public:
  HostNic(unsigned host, WireLink* tx, WireLink* rx, double load, Rng rng, Cycle warmup)
      : lat_by_hops_(4), host_(host), tx_(tx), rx_(rx), load_(load), rng_(rng) {
    for (auto& l : lat_by_hops_) l.set_warmup(warmup);
  }

  static std::map<std::uint64_t, std::pair<Cycle, unsigned>>& in_flight() {
    static std::map<std::uint64_t, std::pair<Cycle, unsigned>> m;  // uid -> (cycle, hops)
    return m;
  }

  void eval(Cycle t) override {
    // --- transmit ---
    if (word_idx_ > 0) {
      const Word w = word_idx_ == 1 ? (uid_ & 0xFFFF) : body_word(uid_, word_idx_);
      tx_->drive_next(Flit{true, false, w});
      if (++word_idx_ == 8) word_idx_ = 0;
    } else if (rng_.next_bool(load_ / 8.0)) {
      do {
        dest_ = static_cast<unsigned>(rng_.next_below(kHosts));
      } while (dest_ == host_);
      uid_ = next_uid()++;
      const unsigned sw0 = switch_of(host_);
      const unsigned hops = 1 + (std::min((switch_of(dest_) + kSwitches - sw0) % kSwitches,
                                          (sw0 + kSwitches - switch_of(dest_)) % kSwitches));
      in_flight()[uid_] = {t + 1, hops};
      ++injected_;
      tx_->drive_next(Flit{true, true, head_word(route(sw0, dest_), dest_, uid_)});
      word_idx_ = 1;
    }
    // --- receive ---
    const Flit& f = rx_->now();
    if (!f.valid) return;
    if (f.sop) {
      rx_uid_hi_ = (f.data >> 5) & 0x7FF;
      rx_host_ok_ = ((f.data >> 2) & 7) == host_;
      rx_idx_ = 1;
      return;
    }
    if (rx_idx_ == 1) rx_uid_ = (rx_uid_hi_ << 16) | f.data;
    if (rx_idx_ >= 2 && body_word(rx_uid_, rx_idx_) != f.data) payload_errors_++;
    if (++rx_idx_ == 8) {
      auto it = in_flight().find(rx_uid_);
      if (it == in_flight().end() || !rx_host_ok_) {
        ++routing_errors_;
      } else {
        ++delivered_;
        lat_by_hops_[it->second.second].record(it->second.first, t - 7);  // Head cycle.
        in_flight().erase(it);
      }
      rx_idx_ = 0;
    }
  }
  void commit(Cycle) override {}
  std::string name() const override { return "host_nic"; }

  static std::uint64_t& next_uid() {
    static std::uint64_t uid = 1;
    return uid;
  }

  std::uint64_t injected_ = 0, delivered_ = 0, payload_errors_ = 0, routing_errors_ = 0;
  std::vector<LatencyStats> lat_by_hops_;

 private:
  unsigned host_;
  WireLink* tx_;
  WireLink* rx_;
  double load_;
  Rng rng_;

  unsigned word_idx_ = 0;
  std::uint64_t uid_ = 0;
  unsigned dest_ = 0;

  unsigned rx_idx_ = 0;
  std::uint64_t rx_uid_ = 0, rx_uid_hi_ = 0;
  bool rx_host_ok_ = false;
};

}  // namespace

int main() {
  const double kLoad = 0.4;  // Per-host offered load (cells/8-cycle slot).
  const Cycle kWarmup = 2000, kCycles = 100000;

  Lan lan;
  std::printf("Telegraphos-style LAN: %u switches (%s)\non a ring, %u hosts, per-host load "
              "%.2f, word 1 of each cell carries the flow id.\n\n",
              kSwitches, lan.cfg.describe().c_str(), kHosts, kLoad);

  // Ring wiring: sw[s] right output -> sw[s+1] left input, and the reverse.
  // Each ingress is a HeaderTranslator with the neighbour's routing table
  // (the figure-6 RT block at every input port).
  const CellFormat fmt = lan.cfg.cell_format();
  std::vector<std::unique_ptr<RoutingTable>> tables;
  std::vector<std::unique_ptr<HeaderTranslator>> relays;
  for (unsigned s = 0; s < kSwitches; ++s) tables.push_back(
      std::make_unique<RoutingTable>(make_ring_table(s)));
  for (unsigned s = 0; s < kSwitches; ++s) {
    const unsigned r = (s + 1) % kSwitches;
    relays.push_back(std::make_unique<HeaderTranslator>(
        &lan.sw[s]->out_link(kPortRight), &lan.sw[r]->in_link(kPortLeft), fmt,
        tables[r].get()));
    relays.push_back(std::make_unique<HeaderTranslator>(
        &lan.sw[r]->out_link(kPortLeft), &lan.sw[s]->in_link(kPortRight), fmt,
        tables[s].get()));
  }
  std::vector<std::unique_ptr<HostNic>> nics;
  Rng seeder(2026);
  for (unsigned h = 0; h < kHosts; ++h) {
    const unsigned s = switch_of(h), p = host_port(h);
    nics.push_back(std::make_unique<HostNic>(h, &lan.sw[s]->in_link(p),
                                             &lan.sw[s]->out_link(p), kLoad, seeder.split(),
                                             kWarmup));
  }
  for (auto& n : nics) lan.eng.add(n.get());
  for (auto& r : relays) lan.eng.add(r.get());
  for (auto& s : lan.sw) lan.eng.add(s.get());

  lan.eng.run(kCycles);

  std::uint64_t injected = 0, delivered = 0, payload_errors = 0, routing_errors = 0;
  for (auto& n : nics) {
    injected += n->injected_;
    delivered += n->delivered_;
    payload_errors += n->payload_errors_;
    routing_errors += n->routing_errors_;
  }

  Table t({"hops (switches)", "cells", "lat min", "lat mean", "lat p99"});
  for (unsigned h = 1; h <= 3; ++h) {
    Histogram acc(4096);
    for (auto& n : nics) acc.merge(n->lat_by_hops_[h].histogram());
    if (acc.samples() == 0) continue;
    t.add_row({Table::integer(h), Table::integer(static_cast<long long>(acc.samples())),
               Table::integer(static_cast<long long>(acc.min())), Table::num(acc.mean(), 1),
               Table::integer(static_cast<long long>(acc.percentile(0.99)))});
  }
  t.print();

  std::uint64_t switch_drops = 0;
  for (auto& s : lan.sw) switch_drops += s->stats().dropped();
  std::printf("\nTotals: injected %llu, delivered %llu, in flight %zu, switch drops %llu.\n",
              static_cast<unsigned long long>(injected),
              static_cast<unsigned long long>(delivered), HostNic::in_flight().size(),
              static_cast<unsigned long long>(switch_drops));
  std::printf("Integrity: %llu payload errors, %llu routing errors.\n",
              static_cast<unsigned long long>(payload_errors),
              static_cast<unsigned long long>(routing_errors));
  std::printf(
      "\nReading: one-hop traffic (two hosts on the same switch) cuts through in\n"
      "a few cycles; each extra ring hop adds the relay + another cut-through\n"
      "switch. This is the paper's LAN use case: the shared buffer keeps every\n"
      "link busy while bursts from eight hosts statistically share one pool per\n"
      "switch.\n");
  return (payload_errors || routing_errors) ? 1 : 0;
}
