// arch_explorer: compare every buffering architecture of section 2 at a
// user-chosen switch size, load, and buffer budget, from the command line.
//
//   ./arch_explorer [n] [load] [total_buffer_cells] [slots]
//   e.g. ./arch_explorer 16 0.9 128 200000
//
// The same total buffer budget is split the way each architecture requires
// (per input, per output, per crosspoint, one pool), so the comparison is
// "what does a fixed amount of on-chip SRAM buy under each organization" --
// the section 2 question that motivates shared buffering.

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "arch/block_crosspoint.hpp"
#include "arch/crosspoint.hpp"
#include "arch/input_queueing.hpp"
#include "arch/input_smoothing.hpp"
#include "arch/knockout.hpp"
#include "arch/output_queueing.hpp"
#include "arch/shared_buffer.hpp"
#include "arch/voq_pim.hpp"
#include "stats/table.hpp"

using namespace pmsb;

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 16;
  const double load = argc > 2 ? std::atof(argv[2]) : 0.9;
  const std::size_t budget = argc > 3 ? static_cast<std::size_t>(std::atoll(argv[3])) : 128;
  const Cycle slots = argc > 4 ? std::atoll(argv[4]) : 200000;
  if (n < 2 || load <= 0 || load > 1 || budget < n) {
    std::fprintf(stderr, "usage: %s [n>=2] [0<load<=1] [buffer_cells>=n] [slots]\n", argv[0]);
    return 2;
  }

  std::printf("Architecture explorer: %ux%u switch, load %.2f, %zu buffer cells total,\n"
              "%lld slots of uniform Bernoulli traffic.\n\n",
              n, n, load, budget, static_cast<long long>(slots));

  struct Entry {
    const char* split;
    std::unique_ptr<SlotModel> model;
  };
  std::vector<Entry> entries;
  entries.push_back({"1 pool", std::make_unique<SharedBufferModel>(n, budget)});
  entries.push_back({"1 pool + out cap",
                     std::make_unique<SharedBufferModel>(n, budget, 2 * budget / n)});
  entries.push_back({"per output", std::make_unique<OutputQueueing>(n, budget / n)});
  entries.push_back({"per output, L=4 concentrator",
                     std::make_unique<KnockoutSwitch>(n, std::min(4u, n), budget / n, Rng(9))});
  entries.push_back(
      {"per input (FIFO)", std::make_unique<InputQueueingFifo>(n, budget / n, Rng(1))});
  entries.push_back(
      {"per input (VOQ+PIM)", std::make_unique<VoqPim>(n, 0, 4, Rng(2), budget / n)});
  if (budget / (static_cast<std::size_t>(n) * n) > 0) {
    entries.push_back({"per crosspoint", std::make_unique<CrosspointQueueing>(
                                             n, budget / (static_cast<std::size_t>(n) * n))});
  }
  if (n % 2 == 0) {
    entries.push_back(
        {"2x2 blocks", std::make_unique<BlockCrosspoint>(n, 2, budget / 4)});
  }
  entries.push_back(
      {"smoothing frame", std::make_unique<InputSmoothing>(n, budget / n, Rng(3))});

  Table t({"architecture", "buffer split", "carried", "loss", "lat mean", "lat p99"});
  for (auto& e : entries) {
    UniformDest dests(n);
    SlotTraffic traffic(n, load, &dests, Rng(42));
    run_slot_sim(*e.model, traffic, slots, slots / 5);
    t.add_row({e.model->kind(), e.split, Table::num(measured_throughput(*e.model, slots), 3),
               Table::sci(e.model->counts().loss_ratio(), 1),
               Table::num(e.model->latency().mean(), 2),
               Table::integer(static_cast<long long>(e.model->latency().p99()))});
  }
  t.print();

  std::printf(
      "\nReading: with the same silicon budget, the shared pool has the lowest\n"
      "loss (statistical multiplexing over all %u outputs); partitioned\n"
      "organizations waste capacity wherever their partition is idle. FIFO\n"
      "input queueing additionally caps carried load near 0.586 (HOL blocking).\n"
      "Try a hotspot: see bench_a3 for the per-output-cap variant that fixes\n"
      "shared-buffer hogging.\n",
      n);
  return 0;
}
