// Quickstart: build a 4x4 pipelined-memory shared-buffer switch, push three
// cells through it, and watch the wave-based operation cycle by cycle --
// including an automatic cut-through (the head of a cell leaves on its
// output link two cycles after it arrived, while its tail is still on the
// input wire).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/switch.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_buffer.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

using namespace pmsb;

namespace {

/// Drive the words of one cell onto an input link, one per cycle, stepping
/// the engine as we go (like a link transmitter would).
void send_cell(Engine& eng, PipelinedSwitch& sw, unsigned input, std::uint64_t uid,
               unsigned dest) {
  const CellFormat fmt = sw.config().cell_format();
  std::printf("\n-- sending cell uid=%llu: input %u -> output %u (head on wire at cycle %lld)\n",
              static_cast<unsigned long long>(uid), input, dest,
              static_cast<long long>(eng.now() + 1));
  for (unsigned k = 0; k < fmt.length_words; ++k) {
    sw.in_link(input).drive_next(Flit{true, k == 0, cell_word(uid, dest, k, fmt)});
    eng.step();
  }
}

}  // namespace

int main() {
  // A small Telegraphos-I-like device: 4x4 crossbar, 8-bit links, 8-byte
  // cells, 8 pipelined memory stages (see SwitchConfig for the knobs).
  SwitchConfig cfg;
  cfg.n_ports = 4;
  cfg.word_bits = 8;
  cfg.cell_words = 8;  // One quantum: 2 * n_ports words.
  cfg.capacity_segments = 32;
  cfg.validate();
  std::printf("Device: %s\n", cfg.describe().c_str());

  PipelinedSwitch sw(cfg);

  // Observability: the switch pushes typed records into a bounded ring
  // buffer; the Tracer is attached as a live drain so each record is also
  // formatted to stdout as it happens. Drop the attach_live call to keep
  // tracing silent and inspect the retained records afterwards instead.
  obs::TraceBuffer trace(256);
  Tracer tracer(stdout);
  tracer.attach_live(trace);
  sw.set_trace(&trace);

  // Metrics: the switch registers named counters and occupancy gauges; the
  // engine samples the gauges every 4 cycles.
  obs::MetricsRegistry metrics;
  sw.register_metrics(metrics);

  // Narrate arrivals/departures via the event hooks.
  SwitchEvents ev;
  ev.on_accept = [](unsigned input, Cycle a0, Cycle t0) {
    std::printf("          cell from input %u (head cycle %lld): write wave granted at "
                "t0=%lld (slack %lld of the 2n-cycle window)\n",
                input, static_cast<long long>(a0), static_cast<long long>(t0),
                static_cast<long long>(t0 - a0));
  };
  ev.on_read_grant = [](unsigned out, unsigned, Cycle tr, Cycle t0, Cycle a0, bool cut) {
    std::printf("          departure on output %u granted at tr=%lld (%s%s) -- head word "
                "hits the output wire at cycle %lld, %lld cycles after arrival\n",
                out, static_cast<long long>(tr), cut ? "cut-through" : "from buffer",
                tr == t0 ? ", same-cycle snoop of the write bus" : "",
                static_cast<long long>(tr + 1), static_cast<long long>(tr + 1 - a0));
  };
  const Subscription ev_sub = sw.events().subscribe(std::move(ev));

  Engine eng;
  eng.add(&sw);
  eng.set_metrics(&metrics, /*period=*/4);

  // Watch the output links.
  auto show_outputs = [&] {
    for (unsigned o = 0; o < cfg.n_ports; ++o) {
      const Flit& f = sw.out_link(o).now();
      if (f.valid)
        std::printf("          [wire] output %u carries %s word 0x%02llx\n", o,
                    f.sop ? "HEAD" : "body", static_cast<unsigned long long>(f.data));
    }
  };

  // 1. A lone cell: arrives, cuts through, departs with 2-cycle head latency.
  send_cell(eng, sw, /*input=*/0, /*uid=*/1, /*dest=*/2);
  for (int k = 0; k < 4; ++k) {
    eng.step();
    show_outputs();
  }

  // 2. Two cells to the SAME output in the same cycle: the shared output
  //    register row staggers the second departure (section 3.4).
  std::printf("\n-- sending two simultaneous cells, both to output 1\n");
  const CellFormat fmt = cfg.cell_format();
  for (unsigned k = 0; k < fmt.length_words; ++k) {
    sw.in_link(1).drive_next(Flit{true, k == 0, cell_word(2, 1, k, fmt)});
    sw.in_link(3).drive_next(Flit{true, k == 0, cell_word(3, 1, k, fmt)});
    eng.step();
  }
  for (int k = 0; k < 20; ++k) eng.step();

  const SwitchStats& st = sw.stats();
  std::printf("\nRun summary: %llu cells in, %llu departures (%llu cut-through, "
              "%llu same-cycle snoops), %llu drops, %llu idle cycles of %llu.\n",
              static_cast<unsigned long long>(st.heads_seen),
              static_cast<unsigned long long>(st.read_grants),
              static_cast<unsigned long long>(st.cut_through_cells),
              static_cast<unsigned long long>(st.snoop_cells),
              static_cast<unsigned long long>(st.dropped()),
              static_cast<unsigned long long>(st.idle_cycles),
              static_cast<unsigned long long>(st.cycles));
  std::printf("Switch drained: %s\n", sw.drained() ? "yes" : "no");

  // The metrics registry has the same story in counter/gauge form.
  std::printf("\nMetrics (%llu gauge samples, every %lld cycles):\n",
              static_cast<unsigned long long>(metrics.samples_taken()),
              static_cast<long long>(eng.sample_period()));
  for (const auto& c : metrics.counters())
    std::printf("  %-34s %llu\n", c.name.c_str(),
                static_cast<unsigned long long>(c.value));
  for (const auto& g : metrics.gauges())
    std::printf("  %-34s last %.0f  max %.0f  mean %.2f\n", g.name.c_str(), g.stats.last,
                g.stats.max, g.stats.mean());
  std::printf("\nTrace buffer retained %zu of %llu records (ring capacity 256).\n",
              trace.size(), static_cast<unsigned long long>(trace.total()));
  return 0;
}
