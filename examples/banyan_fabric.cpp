// banyan_fabric: a 16x16 switching fabric built from eight 4x4
// pipelined-memory switch elements in two delta stages -- the paper's
// "building blocks for larger, multi-stage switches" use (section 2), with
// figure-6-style header translation doing the per-stage self-routing.
//
// The sweep shows what the shared buffers buy inside a blocking multistage
// fabric: internal contention (two cells wanting the same inter-stage link)
// is absorbed by the element buffers instead of being dropped at the
// crosspoints, so a plain banyan carries high uniform loads with tiny
// per-element memories.
//
// The per-stage "stage view" rows come from EventHub subscriptions: the
// example attaches an observer to every element's events() hub purely
// additively -- no element state is claimed, and any further observer (an
// invariant checker, a scoreboard, another tap) can coexist on the same hub.

#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/rng.hpp"
#include "core/event_hub.hpp"
#include "net/banyan.hpp"
#include "stats/stats.hpp"
#include "stats/table.hpp"

using namespace pmsb;
using namespace pmsb::net;

namespace {

/// Per-stage traffic view, filled by an EventHub subscription per element.
struct StageView {
  std::uint64_t accepted = 0;
  std::uint64_t cut_through = 0;
  std::uint64_t dropped = 0;
};

struct SweepPoint {
  double offered;
  double carried;
  double loss;
  double lat_mean;
  std::uint64_t lat_min, lat_p99;
  std::vector<StageView> stages;
};

SweepPoint run_load(double load, Cycle cycles, std::uint64_t seed) {
  BanyanConfig cfg;
  cfg.radix = 4;
  cfg.stages = 2;
  cfg.capacity_cells = 32;  // Per element.
  BanyanNetwork net(cfg);
  Engine eng;
  net.attach(eng);

  // Observe each stage through the multi-subscriber event API. The
  // subscriptions are plain additive taps on every element's hub.
  std::vector<StageView> stages(cfg.stages);
  std::vector<Subscription> taps;
  for (unsigned s = 0; s < cfg.stages; ++s) {
    for (unsigned e = 0; e < net.endpoints() / cfg.radix; ++e) {
      SwitchEvents ev;
      StageView* view = &stages[s];
      ev.on_accept = [view](unsigned, Cycle, Cycle) { ++view->accepted; };
      ev.on_drop = [view](unsigned, Cycle, DropReason) { ++view->dropped; };
      ev.on_read_grant = [view](unsigned, unsigned, Cycle, Cycle, Cycle, bool ct) {
        if (ct) ++view->cut_through;
      };
      taps.push_back(net.element(s, e).events().subscribe(std::move(ev)));
    }
  }
  const unsigned n = net.endpoints();
  const CellFormat fmt = net.cell_format();

  Rng rng(seed);
  LatencyStats lat(cycles / 5);
  std::uint64_t injected = 0, delivered = 0;

  // Per-input word-level injection state; per-output reassembly state.
  struct Tx {
    unsigned idx = 0;
    std::uint64_t uid = 0;
    unsigned dest = 0;
    Cycle gap = 0;
  };
  std::vector<Tx> tx(n);
  std::map<std::uint64_t, Cycle> in_flight;  // uid -> head wire cycle.
  std::vector<unsigned> rx_idx(n, 0);
  std::vector<std::uint64_t> rx_tag(n, 0);
  std::uint64_t next_uid = 1;
  const double mean_gap = fmt.length_words * (1.0 - load) / load;
  const double q = 1.0 / (1.0 + mean_gap);

  for (Cycle t = 0; t < cycles; ++t) {
    for (unsigned i = 0; i < n; ++i) {
      Tx& s = tx[i];
      if (s.idx == 0) {
        if (s.gap > 0) {
          --s.gap;
          continue;
        }
        s.uid = next_uid++;
        s.dest = static_cast<unsigned>(rng.next_below(n));
        in_flight[s.uid] = t + 1;
        ++injected;
      }
      Word w = cell_word(s.uid, 0, s.idx, fmt);
      if (s.idx == 0) w = make_translated_head(w, fmt, net.vc_bits(), 0, s.dest);
      net.in_link(i).drive_next(Flit{true, s.idx == 0, w});
      if (++s.idx == fmt.length_words) {
        s.idx = 0;
        s.gap = static_cast<Cycle>(rng.next_geometric(q));
      }
    }
    eng.step();
    for (unsigned o = 0; o < n; ++o) {
      const Flit& f = net.out_link(o).now();
      if (!f.valid) continue;
      if (f.sop) {
        // Recover the uid from the tag bits above the VC field.
        rx_tag[o] = decode_tag(f.data, fmt) >> net.vc_bits();
        rx_idx[o] = 1;
        continue;
      }
      if (++rx_idx[o] == fmt.length_words) {
        ++delivered;
        // Match the youngest in-flight uid with these tag bits (tags are
        // the mix64 of the uid truncated; collisions are broken by age).
        for (auto it = in_flight.begin(); it != in_flight.end(); ++it) {
          const Word tag = decode_tag(cell_word(it->first, 0, 0, fmt), fmt) >> net.vc_bits();
          if (tag == rx_tag[o]) {
            lat.record(it->second, t - fmt.length_words + 1);
            in_flight.erase(it);
            break;
          }
        }
        rx_idx[o] = 0;
      }
    }
  }
  SweepPoint p;
  p.offered = load;
  p.carried = static_cast<double>(delivered) * fmt.length_words /
              (static_cast<double>(n) * static_cast<double>(cycles));
  p.loss = injected == 0
               ? 0.0
               : static_cast<double>(net.total_drops()) / static_cast<double>(injected);
  p.lat_mean = lat.mean();
  p.lat_min = lat.min();
  p.lat_p99 = lat.p99();
  p.stages = stages;
  // The taps and the network's own stats must agree -- the subscription is a
  // parallel observer, not a replacement accounting path.
  for (unsigned s = 0; s < cfg.stages; ++s) {
    if (p.stages[s].dropped != net.drops_in_stage(s)) {
      std::fprintf(stderr, "FAIL: stage %u event tap saw %llu drops, stats say %llu\n", s,
                   static_cast<unsigned long long>(p.stages[s].dropped),
                   static_cast<unsigned long long>(net.drops_in_stage(s)));
      std::exit(1);
    }
  }
  return p;
}

}  // namespace

int main() {
  std::printf("Banyan fabric: 16x16 from eight 4x4 pipelined-memory elements\n"
              "(two delta stages, 32-cell shared buffer per element, header\n"
              "translation at every element input). Uniform traffic sweep:\n\n");
  Table t({"offered", "carried", "internal loss", "lat min", "lat mean", "lat p99",
           "s0 cut-thru", "s1 cut-thru"});
  for (double load : {0.2, 0.4, 0.6, 0.8, 0.9}) {
    const SweepPoint p = run_load(load, 60000, 77 + static_cast<int>(load * 10));
    const auto ct = [&p](unsigned s) {
      return p.stages[s].accepted == 0 ? 0.0
                                       : static_cast<double>(p.stages[s].cut_through) /
                                             static_cast<double>(p.stages[s].accepted);
    };
    t.add_row({Table::num(p.offered, 1), Table::num(p.carried, 3), Table::sci(p.loss, 1),
               Table::integer(static_cast<long long>(p.lat_min)), Table::num(p.lat_mean, 1),
               Table::integer(static_cast<long long>(p.lat_p99)), Table::num(ct(0), 2),
               Table::num(ct(1), 2)});
  }
  t.print();
  std::printf(
      "\nReading: minimum latency = two cut-through elements + a translation\n"
      "register per hop. A buffer-less banyan would drop every internal\n"
      "collision; here the element shared buffers absorb them (loss stays low\n"
      "until the fabric itself saturates). The cut-through columns -- measured\n"
      "by EventHub taps riding alongside the network's own accounting -- show\n"
      "contention building stage by stage: as load rises, fewer cells sail\n"
      "through without first being buffered whole. For non-blocking behaviour\n"
      "at high load one adds more stages or buffers -- the [Turn93]-style\n"
      "fabrics the paper cites.\n");
  return 0;
}
