#!/usr/bin/env python3
"""Validate Chrome/Perfetto trace-event JSON files (TRACE_*.json).

The benches export registry time series and fabric shard telemetry as
trace-event JSON (DESIGN.md "Observability v2"). chrome://tracing and
Perfetto are forgiving loaders, so a malformed trace often "loads" as an
empty timeline instead of failing -- this script is the strict check CI
runs on every emitted trace:

  * the file parses as JSON and has a non-empty "traceEvents" list;
  * every event carries "ph", "pid", "tid" and "name";
  * every non-metadata event (ph != 'M') has a numeric "ts" >= 0, and
    timestamps are monotonically non-decreasing per (pid, tid) track;
  * complete events (ph == 'X') have a numeric "dur" >= 0.

Usage: validate_perfetto.py TRACE.json [TRACE.json ...]
Exit status: 0 when every file is valid, 1 otherwise.
"""

import json
import sys
from pathlib import Path


def validate(path: Path) -> list:
    errors = []
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        return [f"unreadable or invalid JSON: {e}"]
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["missing 'traceEvents' list"]
    events = doc["traceEvents"]
    if not events:
        return ["'traceEvents' is empty"]

    last_ts = {}  # (pid, tid) -> most recent timestamp
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        for key in ("ph", "pid", "tid", "name"):
            if key not in ev:
                errors.append(f"event {i}: missing {key!r}")
        ph = ev.get("ph")
        if ph == "M":
            continue  # Metadata events carry no timestamp.
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(f"event {i} ({ev.get('name')}): bad ts {ts!r}")
            continue
        track = (ev.get("pid"), ev.get("tid"))
        if track in last_ts and ts < last_ts[track]:
            errors.append(
                f"event {i} ({ev.get('name')}): ts {ts} goes backwards on "
                f"track pid={track[0]} tid={track[1]} (previous {last_ts[track]})")
        last_ts[track] = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                errors.append(f"event {i} ({ev.get('name')}): bad dur {dur!r}")
    return errors


def main() -> int:
    if len(sys.argv) < 2:
        print(f"usage: {sys.argv[0]} TRACE.json [TRACE.json ...]", file=sys.stderr)
        return 2
    failed = False
    for arg in sys.argv[1:]:
        path = Path(arg)
        errors = validate(path)
        if errors:
            failed = True
            print(f"INVALID  {path.name}")
            for e in errors[:20]:
                print(f"  {e}")
            if len(errors) > 20:
                print(f"  ... and {len(errors) - 20} more")
        else:
            doc = json.loads(path.read_text())
            n = len(doc["traceEvents"])
            tracks = {(e.get("pid"), e.get("tid")) for e in doc["traceEvents"]}
            print(f"ok       {path.name} ({n} events, {len(tracks)} tracks)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
