// Differential fuzzer (src/check/): drive randomized traffic/config points
// through every switch model, cross-check them, and on failure shrink the
// witness to a .repro.json for tools/replay_repro.
//
//   fuzz_differential [--runs N] [--seconds S] [--seed X] [--out DIR]
//                     [--jobs J] [--fault K]
//
// Two phases:
//   1. Fixed corpus: N deterministic specs (default 500) derived from
//      --seed, sweeping n in {2,4,8,16}, single- and multi-segment cells,
//      all destination patterns, loads, capacities, and anti-hogging limits.
//      The same seed always fuzzes the same corpus (CI reproducibility).
//   2. Fresh seeds: wall-clock-bounded extra runs (--seconds, default 0)
//      with time-derived seeds, for continuous background fuzzing.
//
// --fault K injects FaultPlan{suppress_write_grant_period=K} into every run
// (a deliberately broken arbiter) to demonstrate the detect -> minimize ->
// replay loop end to end.
//
// Exit status: 0 = all runs clean, 1 = at least one failure (repro files
// written to --out), 2 = usage error.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <system_error>
#include <string>
#include <thread>
#include <vector>

#include "check/differential.hpp"
#include "check/minimize.hpp"
#include "check/repro.hpp"
#include "common/rng.hpp"
#include "exp/thread_pool.hpp"

namespace {

using pmsb::check::FuzzSpec;

/// Deterministic corpus point `i` under `base_seed`. Structural axes (ports,
/// segments) cycle deterministically so every combination is covered even in
/// small corpora; the stochastic axes come from a per-point RNG.
FuzzSpec corpus_spec(unsigned i, std::uint64_t base_seed) {
  static const unsigned kPorts[] = {2, 4, 8, 16};
  static const unsigned kSlots[] = {160, 120, 80, 48};
  FuzzSpec s;
  const unsigned pi = i % 4;
  s.n = kPorts[pi];
  s.slots = kSlots[pi];
  s.segments = ((i / 4) % 2 == 0) ? 1 : 2;  // Single- and multi-segment cells.
  pmsb::Rng rng(pmsb::mix64(base_seed + 0x9e3779b9u) ^ pmsb::mix64(i + 1));
  s.pattern = static_cast<unsigned>(rng.next_below(3));
  s.load = 0.3 + 0.65 * rng.next_double();
  s.hot_fraction = 0.3 + 0.6 * rng.next_double();
  s.capacity_cells = 4u << rng.next_below(4);  // 4, 8, 16, 32 cells.
  // SwitchConfig rejects a per-output limit beyond the whole buffer.
  s.out_queue_limit =
      rng.next_below(3) == 0
          ? std::min(2 + static_cast<unsigned>(rng.next_below(6)), s.capacity_cells)
          : 0;
  s.cut_through = rng.next_below(4) != 0;
  s.seed = pmsb::mix64(base_seed ^ (static_cast<std::uint64_t>(i) << 20));
  return s;
}

struct Failure {
  FuzzSpec spec;
  std::vector<pmsb::check::ScheduledCell> cells;
  pmsb::check::RunOutcome outcome;
};

struct Shared {
  std::mutex mu;
  std::vector<Failure> failures;
  std::atomic<unsigned> done{0};
};

void fuzz_one(const FuzzSpec& spec, Shared& shared) {
  std::vector<pmsb::check::ScheduledCell> cells = pmsb::check::generate_cells(spec);
  pmsb::check::RunOutcome outcome = pmsb::check::run(spec, cells);
  if (!outcome.ok) {
    std::lock_guard<std::mutex> lock(shared.mu);
    shared.failures.push_back(Failure{spec, std::move(cells), std::move(outcome)});
  }
  ++shared.done;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned runs = 500;
  unsigned seconds = 0;
  std::uint64_t seed = 1;
  std::string out_dir = ".";
  unsigned jobs = std::max(1u, std::thread::hardware_concurrency());
  unsigned fault = 0;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz_differential: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--runs") == 0) runs = static_cast<unsigned>(std::atoi(next("--runs")));
    else if (std::strcmp(argv[i], "--seconds") == 0) seconds = static_cast<unsigned>(std::atoi(next("--seconds")));
    else if (std::strcmp(argv[i], "--seed") == 0) seed = std::strtoull(next("--seed"), nullptr, 0);
    else if (std::strcmp(argv[i], "--out") == 0) {
      out_dir = next("--out");
      std::error_code ec;
      std::filesystem::create_directories(out_dir, ec);  // Best effort; writes report errors.
    }
    else if (std::strcmp(argv[i], "--jobs") == 0) jobs = std::max(1, std::atoi(next("--jobs")));
    else if (std::strcmp(argv[i], "--fault") == 0) fault = static_cast<unsigned>(std::atoi(next("--fault")));
    else {
      std::fprintf(stderr,
                   "usage: fuzz_differential [--runs N] [--seconds S] [--seed X] "
                   "[--out DIR] [--jobs J] [--fault K]\n");
      return 2;
    }
  }

  Shared shared;
  unsigned launched = 0;
  {
    pmsb::exp::ThreadPool pool(jobs);
    for (unsigned i = 0; i < runs; ++i) {
      FuzzSpec spec = corpus_spec(i, seed);
      spec.fault_suppress_write_period = fault;
      pool.submit([spec, &shared] { fuzz_one(spec, shared); });
      ++launched;
    }
    pool.wait_idle();

    if (seconds > 0) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
      std::uint64_t fresh_base = static_cast<std::uint64_t>(
          std::chrono::system_clock::now().time_since_epoch().count());
      unsigned i = 0;
      while (std::chrono::steady_clock::now() < deadline) {
        // Batch per pool width so the deadline is checked often.
        for (unsigned b = 0; b < jobs; ++b, ++i) {
          FuzzSpec spec = corpus_spec(i, pmsb::mix64(fresh_base));
          spec.seed = pmsb::mix64(fresh_base ^ (static_cast<std::uint64_t>(i) << 24) ^ 0xf5e5u);
          spec.fault_suppress_write_period = fault;
          pool.submit([spec, &shared] { fuzz_one(spec, shared); });
          ++launched;
        }
        pool.wait_idle();
      }
    }
  }

  std::printf("fuzz_differential: %u runs, %zu failures\n", launched,
              shared.failures.size());
  if (shared.failures.empty()) return 0;

  unsigned written = 0;
  for (const Failure& f : shared.failures) {
    pmsb::check::MinimizeStats mstats;
    pmsb::check::Repro repro =
        pmsb::check::minimize(f.spec, f.cells, f.outcome, 400, &mstats);
    const std::string path =
        out_dir + "/fuzz_" + std::to_string(repro.spec.seed) + ".repro.json";
    std::string err;
    if (!pmsb::check::write_repro_file(repro, path, &err)) {
      std::fprintf(stderr, "fuzz_differential: %s\n", err.c_str());
      continue;
    }
    ++written;
    std::printf("FAILURE [%s] %s\n  minimized %zu -> %zu cells in %u runs -> %s\n",
                repro.category.c_str(), repro.first_issue.c_str(), mstats.cells_before,
                mstats.cells_after, mstats.runs, path.c_str());
    if (written >= 16) {
      std::printf("  ... suppressing repro output for %zu further failures\n",
                  shared.failures.size() - written);
      break;
    }
  }
  return 1;
}
