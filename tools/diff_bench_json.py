#!/usr/bin/env python3
"""Diff two directories of BENCH_*.json artifacts, ignoring "runtime".

The determinism contract (DESIGN.md "Parallel sweeps & simulator
performance") says every bench's "metrics" and "tables" must be
byte-identical at ANY thread count; only the "runtime" object (wall time,
slots/second, thread count) may differ. CI runs the suite at PMSB_THREADS=1
and PMSB_THREADS=4 and feeds both output directories to this script.

Each artifact must also carry exactly the schema's top-level keys
(REQUIRED_KEYS). Without this check a bench that silently stopped emitting
"metrics" (or grew an unreviewed key) on BOTH sides would still diff clean,
because both directories run the same binary.

Exit status: 0 when every artifact pair matches, 1 on any difference, on
artifacts present on one side only, or on a malformed artifact.
"""

import json
import sys
from pathlib import Path

REQUIRED_KEYS = {"bench", "schema_version", "metrics", "runtime", "tables"}


def check_schema(path: Path, doc: dict) -> bool:
    keys = set(doc)
    ok = True
    for missing in sorted(REQUIRED_KEYS - keys):
        print(f"MALFORMED {path.name}: missing top-level key {missing!r}")
        ok = False
    for extra in sorted(keys - REQUIRED_KEYS):
        print(f"MALFORMED {path.name}: unexpected top-level key {extra!r}")
        ok = False
    return ok


def canonical(path: Path) -> str:
    doc = json.loads(path.read_text())
    doc.pop("runtime", None)
    return json.dumps(doc, sort_keys=True)


def main() -> int:
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} DIR_A DIR_B", file=sys.stderr)
        return 2
    a, b = Path(sys.argv[1]), Path(sys.argv[2])
    names_a = {p.name for p in a.glob("BENCH_*.json")}
    names_b = {p.name for p in b.glob("BENCH_*.json")}
    if not names_a:
        print(f"error: no BENCH_*.json artifacts in {a}", file=sys.stderr)
        return 1
    failed = False
    for name in sorted(names_a | names_b):
        if name not in names_a or name not in names_b:
            side = a if name not in names_b else b
            print(f"MISSING  {name} (only in {side})")
            failed = True
            continue
        docs_ok = True
        for side in (a / name, b / name):
            if not check_schema(side, json.loads(side.read_text())):
                docs_ok = False
        if not docs_ok:
            failed = True
        elif canonical(a / name) != canonical(b / name):
            print(f"DIFFERS  {name}")
            failed = True
        else:
            print(f"ok       {name}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
