#!/usr/bin/env python3
"""Diff two directories of BENCH_*.json artifacts, ignoring "runtime".

The determinism contract (DESIGN.md "Parallel sweeps & simulator
performance") says every bench's "metrics" and "tables" must be
byte-identical at ANY thread count; only the "runtime" object (wall time,
slots/second, thread count) may differ. CI runs the suite at PMSB_THREADS=1
and PMSB_THREADS=4 and feeds both output directories to this script. The
same contract covers idle skipping: the quiescence-equivalence job runs the
suite with PMSB_IDLE_SKIP=0 and =1 and diffs the artifacts the same way.

Each artifact must also carry exactly the schema's top-level keys
(REQUIRED_KEYS), and "runtime" must be an object. Without this check a
bench that silently stopped emitting "metrics" (or grew an unreviewed key)
on BOTH sides would still diff clean, because both directories run the same
binary.

"runtime" keys are stripped at ANY nesting depth, not just the top level:
a bench that tucks timing data inside a table-like sub-object would
otherwise make every thread-count (or skip on/off) diff fail spuriously.

Run `diff_bench_json.py --self-test` to exercise the tool against built-in
pass/fail fixtures (CI does this before trusting its verdicts).

Exit status: 0 when every artifact pair matches, 1 on any difference, on
artifacts present on one side only, or on a malformed artifact.
"""

import json
import sys
import tempfile
from pathlib import Path

REQUIRED_KEYS = {"bench", "schema_version", "metrics", "runtime", "tables"}
# Schema v2 additions a bench may carry but need not. "timeseries" (registry
# counter/gauge samples on the metric grid) is INSIDE the diffed surface:
# the sampling cadence is replayed identically at every thread count and
# across idle skipping, so its rows must match bit for bit.
OPTIONAL_KEYS = {"timeseries"}


def check_schema(path: Path, doc) -> bool:
    if not isinstance(doc, dict):
        print(f"MALFORMED {path.name}: top level is not an object")
        return False
    keys = set(doc)
    ok = True
    for missing in sorted(REQUIRED_KEYS - keys):
        print(f"MALFORMED {path.name}: missing top-level key {missing!r}")
        ok = False
    for extra in sorted(keys - REQUIRED_KEYS - OPTIONAL_KEYS):
        print(f"MALFORMED {path.name}: unexpected top-level key {extra!r}")
        ok = False
    if "runtime" in doc and not isinstance(doc["runtime"], dict):
        print(f"MALFORMED {path.name}: 'runtime' is not an object")
        ok = False
    return ok


def strip_runtime(node):
    """Drop every key named "runtime" from `node`, at any nesting depth."""
    if isinstance(node, dict):
        return {k: strip_runtime(v) for k, v in node.items() if k != "runtime"}
    if isinstance(node, list):
        return [strip_runtime(v) for v in node]
    return node


def canonical(path: Path) -> str:
    return json.dumps(strip_runtime(json.loads(path.read_text())), sort_keys=True)


def diff_dirs(a: Path, b: Path) -> int:
    names_a = {p.name for p in a.glob("BENCH_*.json")}
    names_b = {p.name for p in b.glob("BENCH_*.json")}
    if not names_a:
        print(f"error: no BENCH_*.json artifacts in {a}", file=sys.stderr)
        return 1
    failed = False
    for name in sorted(names_a | names_b):
        if name not in names_a or name not in names_b:
            side = a if name not in names_b else b
            print(f"MISSING  {name} (only in {side})")
            failed = True
            continue
        docs_ok = True
        for side in (a / name, b / name):
            if not check_schema(side, json.loads(side.read_text())):
                docs_ok = False
        if not docs_ok:
            failed = True
        elif canonical(a / name) != canonical(b / name):
            print(f"DIFFERS  {name}")
            failed = True
        else:
            print(f"ok       {name}")
    return 1 if failed else 0


def self_test() -> int:
    """Fixture-driven check that the tool itself works: each case writes a
    pair of artifact directories and asserts the expected verdict."""
    base = {
        "bench": "t",
        "schema_version": 2,
        "metrics": {"throughput": 1.0, "p99_latency": 475.0},
        "runtime": {
            "wall_seconds": 0.5,
            "compiler": "gcc 13",
            "flags": "-O2",
            "git_sha": "deadbeef",
        },
        "tables": [],
    }

    def variant(**overrides):
        doc = json.loads(json.dumps(base))
        doc.update(overrides)
        return doc

    nested_a = variant(tables=[{"title": "x", "runtime": {"wall": 1}, "rows": []}])
    nested_b = variant(tables=[{"title": "x", "runtime": {"wall": 2}, "rows": []}])
    no_runtime = {k: v for k, v in base.items() if k != "runtime"}
    ts = {
        "counter_columns": ["switch.cells_out"],
        "gauge_columns": ["buffer.occupancy"],
        "dropped": 0,
        "rows": [[128, 7, 3.0]],
    }
    ts_other = json.loads(json.dumps(ts))
    ts_other["rows"] = [[128, 8, 3.0]]
    provenance_b = variant(
        runtime={"wall_seconds": 0.5, "compiler": "clang 17", "flags": "-O3",
                 "git_sha": "cafebabe"})

    cases = [
        # (name, doc_a, doc_b, expected exit status)
        ("identical", base, base, 0),
        ("runtime-only difference", base, variant(runtime={"wall_seconds": 9.0}), 0),
        ("nested runtime difference", nested_a, nested_b, 0),
        # Build provenance lives in runtime: differing toolchains must not
        # fail a determinism diff.
        ("provenance-only difference", base, provenance_b, 0),
        ("metrics difference", base, variant(metrics={"throughput": 2.0}), 1),
        # "timeseries" is optional but diffed when present.
        ("identical timeseries", variant(timeseries=ts), variant(timeseries=ts), 0),
        ("timeseries difference", variant(timeseries=ts), variant(timeseries=ts_other), 1),
        ("missing runtime block", no_runtime, no_runtime, 1),
        ("non-object runtime block", variant(runtime=3.0), variant(runtime=3.0), 1),
        ("unexpected extra key", variant(extra=1), variant(extra=1), 1),
    ]

    failures = 0
    for name, doc_a, doc_b, expected in cases:
        with tempfile.TemporaryDirectory() as tmp:
            da, db = Path(tmp) / "a", Path(tmp) / "b"
            da.mkdir()
            db.mkdir()
            (da / "BENCH_t.json").write_text(json.dumps(doc_a))
            (db / "BENCH_t.json").write_text(json.dumps(doc_b))
            got = diff_dirs(da, db)
        verdict = "PASS" if got == expected else "FAIL"
        if got != expected:
            failures += 1
        print(f"self-test {verdict}: {name} (exit {got}, expected {expected})")
    # One-sided artifact case (needs asymmetric directories).
    with tempfile.TemporaryDirectory() as tmp:
        da, db = Path(tmp) / "a", Path(tmp) / "b"
        da.mkdir()
        db.mkdir()
        (da / "BENCH_t.json").write_text(json.dumps(base))
        got = diff_dirs(da, db)
    verdict = "PASS" if got == 1 else "FAIL"
    if got != 1:
        failures += 1
    print(f"self-test {verdict}: one-sided artifact (exit {got}, expected 1)")

    print(f"self-test: {failures} failure(s)")
    return 1 if failures else 0


def main() -> int:
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        return self_test()
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} DIR_A DIR_B | --self-test", file=sys.stderr)
        return 2
    return diff_dirs(Path(sys.argv[1]), Path(sys.argv[2]))


if __name__ == "__main__":
    sys.exit(main())
