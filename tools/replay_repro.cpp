// Replay a minimized .repro.json failure witness (see src/check/repro.hpp).
//
// Exit status: 1 when the recorded failure reproduces (the expected outcome
// for a committed repro), 0 when the run is now clean or fails only in a
// different category (the bug is fixed or has morphed), 2 on usage or file
// errors.

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "check/repro.hpp"

int main(int argc, char** argv) {
  bool verbose = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-v") == 0 || std::strcmp(argv[i], "--verbose") == 0) {
      verbose = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "usage: replay_repro [-v] <file.repro.json>\n");
    return 2;
  }

  pmsb::check::Repro repro;
  std::string err;
  if (!pmsb::check::read_repro_file(path, &repro, &err)) {
    std::fprintf(stderr, "replay_repro: %s: %s\n", path, err.c_str());
    return 2;
  }
  std::printf("replaying %s: n=%u segments=%u capacity=%u slots=%u cells=%zu fault=%u\n",
              path, repro.spec.n, repro.spec.segments, repro.spec.capacity_cells,
              repro.spec.slots, repro.cells.size(), repro.spec.fault_suppress_write_period);
  if (!repro.first_issue.empty()) {
    std::printf("recorded failure: %s\n", repro.first_issue.c_str());
  }

  const pmsb::check::ReplayResult res = pmsb::check::replay(repro);
  for (const auto& s : res.outcome.summaries) {
    std::printf("  %-14s injected=%llu delivered=%llu dropped=%llu violations=%llu\n",
                s.model.c_str(), static_cast<unsigned long long>(s.injected),
                static_cast<unsigned long long>(s.delivered),
                static_cast<unsigned long long>(s.dropped),
                static_cast<unsigned long long>(s.violations));
  }
  const std::size_t shown = verbose ? res.outcome.issues.size()
                                    : std::min<std::size_t>(res.outcome.issues.size(), 8);
  for (std::size_t i = 0; i < shown; ++i) {
    std::printf("  issue: %s\n", res.outcome.issues[i].c_str());
  }
  if (res.outcome.issues.size() > shown) {
    std::printf("  ... %zu more issues (-v shows all)\n", res.outcome.issues.size() - shown);
  }

  if (res.reproduced) {
    std::printf("REPRODUCED (category %s)\n",
                res.expected_category.empty() ? "any" : res.expected_category.c_str());
    return 1;
  }
  if (res.outcome.ok) {
    std::printf("DID NOT REPRODUCE: run is clean\n");
  } else {
    std::printf("DID NOT REPRODUCE in category %s (first issue now: %s)\n",
                res.expected_category.c_str(), res.outcome.issues.front().c_str());
  }
  return 0;
}
